// The SimMPI job runtime: one "mpirun" invocation.
//
// Ranks are threads pinned to simulated nodes by a ranklist (rank → node
// id), exactly how the paper's daemon restarts SKT-HPL: survivors keep
// their nodes (and their SHM checkpoints), the lost rank lands on a spare.
// When any node in use is powered off, the whole job aborts — the behaviour
// the paper observes in production MPI runtimes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpi/mailbox.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "telemetry/metrics.hpp"

namespace skt::mpi {

class Comm;

/// Thrown inside rank threads when the job has been aborted (node failure,
/// peer error). Application code must let it propagate; the launcher
/// handles restart.
class JobAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct RuntimeConfig {
  /// Charge virtual network costs per message from the node profiles
  /// (latency + bytes / per-rank NIC share). Off by default so unit tests
  /// measure pure protocol behaviour.
  bool model_network = false;
};

struct JobResult {
  bool completed = false;
  std::string abort_reason;
  double elapsed_real_s = 0.0;
  /// Critical-path virtual seconds: max over ranks of per-rank charges,
  /// plus job-level charges (device flushes accounted collectively).
  double virtual_s = 0.0;
  /// Named durations recorded by ranks (e.g. "checkpoint", "recover",
  /// "ckpt_worker"). Each record_time() call max-merges: the stored value
  /// is the LARGEST single observation across all ranks and calls — a
  /// worst-case per-event duration, not a sum over the run.
  std::map<std::string, double> times;
  /// Total payload bytes and message count pushed through mailboxes over
  /// the whole job — the "bytes on the wire" the bandwidth benches report.
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_messages = 0;
  /// Payload bytes additionally copied through the mailbox layer (the
  /// zero-copy move/take paths don't pay this).
  std::uint64_t copied_bytes = 0;
};

class Runtime {
 public:
  /// `ranklist[r]` is the node id hosting world rank r.
  Runtime(sim::Cluster& cluster, std::vector<int> ranklist,
          sim::FailureInjector* injector = nullptr, RuntimeConfig config = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Launch one rank thread per ranklist entry running `fn(world_comm)`.
  /// Blocks until all ranks return or the job aborts. Can be called once.
  JobResult run(const std::function<void(Comm&)>& fn);

  /// Abort the job (idempotent); wakes every blocked receive.
  void abort(const std::string& reason);

  /// True when `node_id` hosts at least one of this job's ranks.
  [[nodiscard]] bool uses_node(int node_id) const;

  // --- services used by Comm ------------------------------------------
  [[nodiscard]] int world_size() const { return static_cast<int>(ranklist_.size()); }
  [[nodiscard]] const std::atomic<bool>& aborted_flag() const { return aborted_; }
  [[nodiscard]] Mailbox& mailbox(int world_rank);
  [[nodiscard]] sim::Node& node_of(int world_rank);
  [[nodiscard]] int node_id_of(int world_rank) const;
  [[nodiscard]] sim::Cluster& cluster() { return cluster_; }
  [[nodiscard]] sim::FailureInjector* injector() { return injector_; }

  /// Throws JobAborted if the job aborted or this rank's node is dead.
  void check_alive(int world_rank) const;

  /// Virtual cost of moving `bytes` from rank src to rank dst under the
  /// configured network model; 0 when modelling is off or intra-node.
  [[nodiscard]] double message_cost(int src_world, int dst_world, std::size_t bytes) const;

  /// Thread-safe: a rank thread and its async checkpoint worker may charge
  /// the same rank's virtual clock concurrently.
  void charge_rank_virtual(int world_rank, double seconds);
  [[nodiscard]] double rank_virtual(int world_rank) const;
  void charge_job_virtual(double seconds);

  /// Record a named duration. Max-merged per call: JobResult::times keeps
  /// the largest single observation across ranks and calls.
  void record_time(const std::string& name, double seconds);

  /// Account one sent message; called by Comm on every send. Mirrored into
  /// the process-wide telemetry counters so a RunReport sees cumulative
  /// traffic across every launcher attempt, not just the last Runtime.
  void count_message(std::size_t payload_bytes) {
    wire_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    wire_messages_.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Counter& wire = telemetry::metrics().counter("mpi.wire_bytes");
    static telemetry::Counter& msgs = telemetry::metrics().counter("mpi.wire_messages");
    wire.add(payload_bytes);
    msgs.increment();
  }
  /// Account payload bytes copied through the mailbox layer (copy-sends and
  /// copy-receives); the zero-copy move/take paths never report here.
  void count_copy(std::size_t payload_bytes) {
    copied_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    static telemetry::Counter& copied = telemetry::metrics().counter("mpi.copied_bytes");
    copied.add(payload_bytes);
  }
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return wire_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wire_messages() const {
    return wire_messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t copied_bytes() const {
    return copied_bytes_.load(std::memory_order_relaxed);
  }

 private:
  sim::Cluster& cluster_;
  std::vector<int> ranklist_;
  sim::FailureInjector* injector_;
  RuntimeConfig config_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  std::mutex abort_mutex_;
  std::string abort_reason_;

  // Atomic because async checkpoint workers charge virtual time from their
  // own thread while the rank thread keeps communicating.
  std::unique_ptr<std::atomic<double>[]> rank_virtual_s_;
  std::atomic<std::int64_t> job_virtual_ns_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::atomic<std::uint64_t> wire_messages_{0};
  std::atomic<std::uint64_t> copied_bytes_{0};

  std::mutex times_mutex_;
  std::map<std::string, double> times_;

  bool ran_ = false;
};

}  // namespace skt::mpi
