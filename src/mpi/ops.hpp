// Reduction operators for SimMPI collectives. All are commutative and
// associative; SUM over doubles carries the usual floating-point rounding,
// which is why the paper's encoder defaults to bitwise XOR.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace skt::mpi {

/// acc[i] = op(acc[i], in[i]) over equal-length spans. The fixed-length
/// inner block gives the compiler a countable loop it auto-vectorizes
/// (XOR/SUM over uint64/double lanes compile to packed instructions),
/// which is what makes the collectives' combine step memory-bound instead
/// of instruction-bound.
template <typename T, typename Op>
inline void combine_inplace(std::span<T> acc, std::span<const T> in, Op op) {
  constexpr std::size_t kBlock = 32;
  T* a = acc.data();
  const T* b = in.data();
  const std::size_t n = acc.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) a[i + j] = op(a[i + j], b[i + j]);
  }
  for (; i < n; ++i) a[i] = op(a[i], b[i]);
}

struct Sum {
  template <typename T>
  T operator()(T a, T b) const {
    return a + b;
  }
};

struct Prod {
  template <typename T>
  T operator()(T a, T b) const {
    return a * b;
  }
};

struct Max {
  template <typename T>
  T operator()(T a, T b) const {
    return std::max(a, b);
  }
};

struct Min {
  template <typename T>
  T operator()(T a, T b) const {
    return std::min(a, b);
  }
};

/// Bitwise XOR; integral types only (use std::uint64_t lanes over raw bytes).
struct BXor {
  template <typename T>
  T operator()(T a, T b) const {
    static_assert(std::is_integral_v<T>, "BXor requires an integral type");
    return static_cast<T>(a ^ b);
  }
};

struct LAnd {
  bool operator()(bool a, bool b) const { return a && b; }
};

struct LOr {
  bool operator()(bool a, bool b) const { return a || b; }
};

/// (value, index) pair for pivot search — MPI_MAXLOC over |value|.
struct ValueLoc {
  double value = 0.0;
  std::int64_t index = -1;

  friend bool operator==(const ValueLoc&, const ValueLoc&) = default;
};

/// Picks the pair with the larger value; ties resolve to the smaller index
/// so every rank agrees on one pivot.
struct MaxLoc {
  ValueLoc operator()(const ValueLoc& a, const ValueLoc& b) const {
    if (a.value > b.value) return a;
    if (b.value > a.value) return b;
    return a.index <= b.index ? a : b;
  }
};

}  // namespace skt::mpi
