// Reduction operators for SimMPI collectives. All are commutative and
// associative; SUM over doubles carries the usual floating-point rounding,
// which is why the paper's encoder defaults to bitwise XOR.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "encoding/kernels.hpp"

namespace skt::mpi {

struct Sum {
  template <typename T>
  T operator()(T a, T b) const {
    return a + b;
  }
};

struct Prod {
  template <typename T>
  T operator()(T a, T b) const {
    return a * b;
  }
};

struct Max {
  template <typename T>
  T operator()(T a, T b) const {
    return std::max(a, b);
  }
};

struct Min {
  template <typename T>
  T operator()(T a, T b) const {
    return std::min(a, b);
  }
};

/// Bitwise XOR; integral types only (use std::uint64_t lanes over raw bytes).
struct BXor {
  template <typename T>
  T operator()(T a, T b) const {
    static_assert(std::is_integral_v<T>, "BXor requires an integral type");
    return static_cast<T>(a ^ b);
  }
};

struct LAnd {
  bool operator()(bool a, bool b) const { return a && b; }
};

/// acc[i] = op(acc[i], in[i]) over equal-length spans — the combine step of
/// every collective. The two bulk-data cases (XOR over uint64 lanes, SUM
/// over doubles) dispatch into the runtime-selected SIMD kernels; the
/// generic fallback keeps the fixed-length inner block the compiler
/// auto-vectorizes, so either way the combine is memory-bound instead of
/// instruction-bound.
template <typename T, typename Op>
inline void combine_inplace(std::span<T> acc, std::span<const T> in, Op op) {
  if constexpr (std::is_same_v<Op, BXor> && std::is_same_v<T, std::uint64_t>) {
    enc::kernels::xor_acc(std::as_writable_bytes(acc), std::as_bytes(in));
  } else if constexpr (std::is_same_v<Op, Sum> && std::is_same_v<T, double>) {
    enc::kernels::sum_acc(acc, in);
  } else {
    constexpr std::size_t kBlock = 32;
    T* a = acc.data();
    const T* b = in.data();
    const std::size_t n = acc.size();
    std::size_t i = 0;
    for (; i + kBlock <= n; i += kBlock) {
      for (std::size_t j = 0; j < kBlock; ++j) a[i + j] = op(a[i + j], b[i + j]);
    }
    for (; i < n; ++i) a[i] = op(a[i], b[i]);
  }
}

struct LOr {
  bool operator()(bool a, bool b) const { return a || b; }
};

/// (value, index) pair for pivot search — MPI_MAXLOC over |value|.
struct ValueLoc {
  double value = 0.0;
  std::int64_t index = -1;

  friend bool operator==(const ValueLoc&, const ValueLoc&) = default;
};

/// Picks the pair with the larger value; ties resolve to the smaller index
/// so every rank agrees on one pivot.
struct MaxLoc {
  ValueLoc operator()(const ValueLoc& a, const ValueLoc& b) const {
    if (a.value > b.value) return a;
    if (b.value > a.value) return b;
    return a.index <= b.index ? a : b;
  }
};

}  // namespace skt::mpi
