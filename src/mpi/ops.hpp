// Reduction operators for SimMPI collectives. All are commutative and
// associative; SUM over doubles carries the usual floating-point rounding,
// which is why the paper's encoder defaults to bitwise XOR.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>

namespace skt::mpi {

struct Sum {
  template <typename T>
  T operator()(T a, T b) const {
    return a + b;
  }
};

struct Prod {
  template <typename T>
  T operator()(T a, T b) const {
    return a * b;
  }
};

struct Max {
  template <typename T>
  T operator()(T a, T b) const {
    return std::max(a, b);
  }
};

struct Min {
  template <typename T>
  T operator()(T a, T b) const {
    return std::min(a, b);
  }
};

/// Bitwise XOR; integral types only (use std::uint64_t lanes over raw bytes).
struct BXor {
  template <typename T>
  T operator()(T a, T b) const {
    static_assert(std::is_integral_v<T>, "BXor requires an integral type");
    return static_cast<T>(a ^ b);
  }
};

struct LAnd {
  bool operator()(bool a, bool b) const { return a && b; }
};

struct LOr {
  bool operator()(bool a, bool b) const { return a || b; }
};

/// (value, index) pair for pivot search — MPI_MAXLOC over |value|.
struct ValueLoc {
  double value = 0.0;
  std::int64_t index = -1;

  friend bool operator==(const ValueLoc&, const ValueLoc&) = default;
};

/// Picks the pair with the larger value; ties resolve to the smaller index
/// so every rank agrees on one pivot.
struct MaxLoc {
  ValueLoc operator()(const ValueLoc& a, const ValueLoc& b) const {
    if (a.value > b.value) return a;
    if (b.value > a.value) return b;
    return a.index <= b.index ? a : b;
  }
};

}  // namespace skt::mpi
