// Accelerator-offloaded computation under self-checkpoint (Section 5.1):
// the working data lives in simulated device memory while kernels run;
// before every checkpoint it is staged back to the host (the protocol's
// SHM-resident A1), and after a restore it is re-uploaded. A node
// power-off mid-run wipes both the node AND its device — recovery rebuilds
// the host copy from the group's checksums, then repopulates the device.
//
//   ./ft_accelerator [--ranks 4] [--data-kib 512] [--iters 10]
//                    [--kill-at 6] [--ckpt-every 2]
#include <cstdio>
#include <cstring>

#include "ckpt/session.hpp"
#include "mpi/launcher.hpp"
#include "sim/accelerator.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace skt;

namespace {

struct AccelState {
  std::uint64_t iteration = 0;
};

/// The "kernel": an in-place mix executed in device memory.
void device_kernel(std::span<std::byte> device, std::uint64_t iteration, int rank) {
  std::span<std::uint64_t> lanes{reinterpret_cast<std::uint64_t*>(device.data()),
                                 device.size() / sizeof(std::uint64_t)};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes[i] = util::splitmix64(lanes[i] ^ (iteration * 0x9e3779b97f4a7c15ull) ^
                                (static_cast<std::uint64_t>(rank) << 32) ^ i);
  }
}

void worker(mpi::Comm& world, std::size_t data_bytes, int iterations, int kill_at,
            int ckpt_every, double* staging_s_out) {
  ckpt::Session session = ckpt::SessionBuilder{}
                              .strategy(ckpt::Strategy::kSelf)
                              .key_prefix("accel")
                              .data_bytes(data_bytes)
                              .user_bytes(sizeof(AccelState))
                              .build(world);

  const ckpt::OpenOutcome outcome = session.open();
  auto* state = reinterpret_cast<AccelState*>(session.user_state().data());

  // Device memory is per-job and volatile; a restart always starts blank.
  sim::Accelerator device(data_bytes);
  double staging_s = 0.0;

  if (outcome == ckpt::OpenOutcome::kRestored) {
    SKT_LOG_INFO("restored host copy at iteration {}; re-uploading to device",
                 state->iteration);
  } else {
    state->iteration = 0;
    std::memset(session.data().data(), 0x5a, data_bytes);
  }
  // Populate (or repopulate) the device from the authoritative host copy.
  staging_s += device.upload(session.data());

  while (state->iteration < static_cast<std::uint64_t>(iterations)) {
    const std::uint64_t next = state->iteration + 1;
    device_kernel(device.memory(), next, world.rank());
    if (static_cast<int>(next) == kill_at) world.failpoint("accel.kill");

    if (next % static_cast<std::uint64_t>(ckpt_every) == 0 ||
        next == static_cast<std::uint64_t>(iterations)) {
      // Section 5.1: device data MUST come back to main memory before the
      // checkpoint — A1 is what the group encodes.
      staging_s += device.download(session.data());
      state->iteration = next;
      session.commit();
    } else {
      state->iteration = next;
    }
  }

  // Final verification: replay the kernel schedule host-side and compare
  // with the device state (catches both staging directions).
  std::vector<std::byte> replay(data_bytes, std::byte{0x5a});
  for (std::uint64_t it = 1; it <= static_cast<std::uint64_t>(iterations); ++it) {
    device_kernel(replay, it, world.rank());
  }
  std::vector<std::byte> device_now(data_bytes);
  staging_s += device.download(device_now);
  if (std::memcmp(replay.data(), device_now.data(), data_bytes) != 0) {
    throw std::runtime_error("device state diverged from the replayed schedule");
  }
  if (world.rank() == 0 && staging_s_out != nullptr) *staging_s_out = staging_s;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  util::set_log_level(opts.get("log", "info"));
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  const std::size_t data_bytes =
      static_cast<std::size_t>(opts.get_int("data-kib", 512)) * 1024;
  const int iterations = static_cast<int>(opts.get_int("iters", 10));
  const int kill_at = static_cast<int>(opts.get_int("kill-at", 6));
  const int ckpt_every = static_cast<int>(opts.get_int("ckpt-every", 2));

  sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 2, .nodes_per_rack = 4});
  sim::FailureInjector injector;
  injector.add_rule({.point = "accel.kill", .world_rank = 1, .hit = 1, .repeat = false});

  double staging_s = 0.0;
  mpi::JobLauncher launcher(cluster, &injector, {.max_restarts = 2});
  const auto result = launcher.run(ranks, [&](mpi::Comm& w) {
    worker(w, data_bytes, iterations, kill_at, ckpt_every, &staging_s);
  });

  std::printf("\n=== accelerator-offloaded run with self-checkpoint ===\n");
  util::Table table({"metric", "value"});
  table.add_row({"device memory/rank", util::format_bytes(data_bytes)});
  table.add_row({"completed (node+device lost at iter " + std::to_string(kill_at) + ")",
                 result.success ? "yes" : "NO"});
  table.add_row({"restarts", std::to_string(result.restarts)});
  table.add_row({"device<->host staging (modeled)", util::format_seconds(staging_s)});
  table.add_row({"replayed-schedule verification", result.success ? "PASSED" : "-"});
  table.print();
  return result.success ? 0 : 1;
}
