// Compare the checkpoint strategies side by side on one workload: memory
// footprint (Table 1), available-memory fraction (Fig. 6), commit cost,
// and whether a node loss during the checkpoint update window is
// survivable (Figs. 2-4).
//
//   ./strategy_compare [--ranks 8] [--group 4] [--data-kib 256]
#include <cstdio>
#include <string>

#include "ckpt_demo_common.hpp"
#include "ckpt/plan.hpp"
#include "mpi/launcher.hpp"
#include "storage/device.hpp"
#include "util/format.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace skt;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  util::set_log_level(opts.get("log", "warn"));
  const int ranks = static_cast<int>(opts.get_int("ranks", 8));
  const int group = static_cast<int>(opts.get_int("group", 4));
  const std::size_t data_bytes = static_cast<std::size_t>(opts.get_int("data-kib", 256)) * 1024;

  util::Table table({"strategy", "available mem (Eq.)", "footprint/process", "commit time",
                     "survives kill mid-update?"});

  for (const auto strategy : {ckpt::Strategy::kSingle, ckpt::Strategy::kDouble,
                              ckpt::Strategy::kSelf, ckpt::Strategy::kBlcr}) {
    const examples::StrategyProbe probe =
        examples::probe_strategy(strategy, ranks, group, data_bytes);
    const double fraction = ckpt::available_fraction(strategy, group);
    table.add_row({std::string(ckpt::to_string(strategy)),
                   util::format("{:.1%}", fraction),
                   util::format_bytes(probe.memory_bytes),
                   util::format_seconds(probe.commit_s),
                   probe.survives_update_failure ? "yes" : "NO (Fig. 2 CASE 2)"});
  }

  std::printf("\n=== checkpoint strategies, group size %d, %s protected/process ===\n", group,
              util::format_bytes(data_bytes).c_str());
  table.print();
  std::printf(
      "\nself-checkpoint keeps double-checkpoint's full fault tolerance while\n"
      "freeing (N-1)/2N of memory for the application — %.1f%% here vs %.1f%%.\n",
      100.0 * ckpt::available_fraction(ckpt::Strategy::kSelf, group),
      100.0 * ckpt::available_fraction(ckpt::Strategy::kDouble, group));
  return 0;
}
