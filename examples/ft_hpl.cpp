// Fault-tolerant HPL (SKT-HPL) demo: run a distributed Linpack solve with
// self-checkpointing and power off a compute node in the middle — the run
// recovers from in-memory checkpoints and still passes HPL verification.
//
// With --telemetry <prefix> the run records spans and metrics and writes
// <prefix>_trace.json (Chrome trace_event timeline) plus a RunReport at
// <prefix>_report.json with the per-phase histograms and wire counters.
//
//   ./ft_hpl [--n 384] [--nb 32] [--p 2] [--q 2] [--group 4]
//            [--strategy self|double|single|blcr] [--ckpt-every 2]
//            [--async] [--kill-panel 4] [--no-kill] [--telemetry out/hpl]
//            [--monitor out/hpl]
//
// --async switches commits to the background pipeline: the elimination
// loop pays only the stage copy and the encode/flush overlaps the next
// panels (the summary then reports the overlapped time and fraction).
//
// --monitor <prefix> arms the live health monitor: heartbeat-driven
// failure detection (the detect phase measures real latency into the
// launcher.detect_latency_s histogram), a POSTMORTEM_ft_hpl.json record of
// the kill, and a JSON-lines feed at <prefix>_feed.jsonl for
// scripts/monitor_demo.sh. Implies --telemetry artifacts at the same
// prefix unless --telemetry is given too.
#include <cstdio>
#include <optional>
#include <string>

#include "hpl/skt_hpl.hpp"
#include "mpi/launcher.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace skt;

namespace {

ckpt::Strategy parse_strategy(const std::string& name) {
  if (name == "self") return ckpt::Strategy::kSelf;
  if (name == "double") return ckpt::Strategy::kDouble;
  if (name == "single") return ckpt::Strategy::kSingle;
  if (name == "blcr") return ckpt::Strategy::kBlcr;
  throw std::invalid_argument("unknown strategy: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  util::set_log_level(opts.get("log", "info"));

  hpl::SktHplConfig config;
  config.hpl.n = opts.get_int("n", 384);
  config.hpl.nb = opts.get_int("nb", 32);
  config.hpl.grid_p = static_cast<int>(opts.get_int("p", 2));
  config.hpl.grid_q = static_cast<int>(opts.get_int("q", 2));
  config.group_size = static_cast<int>(opts.get_int("group", 4));
  config.ckpt_every_panels = opts.get_int("ckpt-every", 2);
  config.strategy = parse_strategy(opts.get("strategy", "self"));
  config.async = opts.get_bool("async", false);
  const std::string monitor_prefix = opts.get("monitor", "");
  std::string telemetry_prefix = opts.get("telemetry", "");
  if (telemetry_prefix.empty()) telemetry_prefix = monitor_prefix;
  if (!telemetry_prefix.empty()) telemetry::set_enabled(true);

  storage::SnapshotVault vault;
  config.vault = &vault;
  config.device = storage::ssd_profile();

  const int ranks = config.hpl.grid_p * config.hpl.grid_q;
  sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 2, .nodes_per_rack = 4});
  sim::FailureInjector injector;
  if (!opts.get_bool("no-kill", false)) {
    const int kill_panel = static_cast<int>(opts.get_int("kill-panel", 4));
    injector.add_rule(
        {.point = "hpl.panel", .world_rank = 1, .hit = kill_panel, .repeat = false});
    std::printf("will power off rank 1's node at elimination panel %d\n", kill_panel);
  }

  mpi::LauncherConfig launch_config{.max_restarts = 3, .detect_delay_s = 3.0};
  std::optional<telemetry::Aggregator> monitor;
  if (!monitor_prefix.empty()) {
    launch_config.health.enabled = true;
    launch_config.postmortem_name = "ft_hpl";
    telemetry::AggregatorConfig mc;
    mc.interval_s = 0.02;
    mc.feed_path = monitor_prefix + "_feed.jsonl";
    monitor.emplace(mc);
    monitor->start();
  }
  mpi::JobLauncher launcher(cluster, &injector, launch_config);
  hpl::SktHplResult last{};
  const mpi::LaunchResult result = launcher.run(ranks, [&](mpi::Comm& world) {
    const hpl::SktHplResult r = hpl::run_skt_hpl(world, config);
    if (world.rank() == 0) last = r;
  });
  if (monitor) monitor->stop();

  std::printf("\n=== SKT-HPL (%s) ===\n", std::string(ckpt::to_string(config.strategy)).c_str());
  util::Table table({"metric", "value"});
  table.add_row({"problem size N", std::to_string(config.hpl.n)});
  table.add_row({"grid", std::to_string(config.hpl.grid_p) + " x " +
                             std::to_string(config.hpl.grid_q)});
  table.add_row({"completed", result.success ? "yes" : "NO"});
  table.add_row({"restarts (node losses survived)", std::to_string(result.restarts)});
  table.add_row({"resumed from checkpoint", last.restored ? "yes" : "no"});
  table.add_row({"checkpoints in final attempt", std::to_string(last.checkpoints)});
  table.add_row({"commit mode", config.async ? "async (pipelined)" : "sync"});
  if (config.async) {
    table.add_row({"critical-path commit time", util::format_seconds(last.ckpt_total_s)});
    table.add_row({"overlapped worker time", util::format_seconds(last.ckpt_worker_total_s)});
    table.add_row({"overlap fraction", util::format("{:.1%}", last.overlap_fraction)});
  }
  table.add_row({"checkpoint size/process", util::format_bytes(last.ckpt_bytes)});
  table.add_row({"checksum size/process", util::format_bytes(last.checksum_bytes)});
  table.add_row({"dirty bytes (last commit)", util::format_bytes(last.dirty_bytes_last)});
  table.add_row({"dirty fraction (last / mean)",
                 util::format("{:.1%} / {:.1%}", last.dirty_fraction_last,
                              last.dirty_fraction_mean)});
  table.add_row({"GFLOP/s (final attempt)",
                 util::format("{:.2f}", last.hpl.gflops)});
  table.add_row({"residual (scaled)", util::format("{:.3e}", last.hpl.residual.scaled)});
  table.add_row({"HPL verification", last.hpl.residual.pass ? "PASSED" : "FAILED"});
  table.add_row({"total wall time", util::format_seconds(result.total_real_s)});
  if (monitor) {
    table.add_row({"monitor ticks", std::to_string(monitor->ticks())});
    table.add_row({"postmortems written", std::to_string(result.postmortems.size())});
    if (!result.cycles.empty() && result.cycles.front().detect_latency_s >= 0.0) {
      table.add_row({"measured detect latency",
                     util::format_seconds(result.cycles.front().detect_latency_s)});
    }
  }
  table.print();

  if (!telemetry_prefix.empty()) {
    telemetry::Tracer::instance().export_chrome_trace(telemetry_prefix + "_trace.json");
    telemetry::RunReport report("ft_hpl");
    report.set("n", config.hpl.n);
    report.set("nb", config.hpl.nb);
    report.set("grid_p", static_cast<std::int64_t>(config.hpl.grid_p));
    report.set("grid_q", static_cast<std::int64_t>(config.hpl.grid_q));
    report.set("strategy", ckpt::to_string(config.strategy));
    report.set("completed", result.success);
    report.set("restarts", static_cast<std::int64_t>(result.restarts));
    report.set("resumed_from_checkpoint", last.restored);
    report.set("checkpoints_final_attempt", static_cast<std::int64_t>(last.checkpoints));
    report.set("async_commit", config.async);
    if (config.async) {
      report.set("ckpt_stage_total_s", last.ckpt_stage_total_s);
      report.set("ckpt_worker_total_s", last.ckpt_worker_total_s);
      report.set("overlap_fraction", last.overlap_fraction);
    }
    report.set("ckpt_bytes_per_process", static_cast<std::uint64_t>(last.ckpt_bytes));
    report.set("checksum_bytes_per_process", static_cast<std::uint64_t>(last.checksum_bytes));
    report.set("dirty_bytes_last_commit", static_cast<std::uint64_t>(last.dirty_bytes_last));
    report.set("dirty_bytes_total", static_cast<std::uint64_t>(last.dirty_bytes_total));
    report.set("dirty_fraction_last", last.dirty_fraction_last);
    report.set("dirty_fraction_mean", last.dirty_fraction_mean);
    if (monitor) {
      report.set("monitor_ticks", monitor->ticks());
      report.set("postmortems", static_cast<std::int64_t>(result.postmortems.size()));
      if (!result.cycles.empty()) {
        report.set("detect_latency_s", result.cycles.front().detect_latency_s);
        report.set("detect_phi", result.cycles.front().detect_phi);
      }
    }
    report.set("gflops_final_attempt", last.hpl.gflops);
    report.set("residual_scaled", last.hpl.residual.scaled);
    report.set("verification_passed", last.hpl.residual.pass);
    report.set("total_real_s", result.total_real_s);
    report.write(telemetry_prefix + "_report.json");
  }

  if (!result.success) std::printf("failure: %s\n", result.failure.c_str());
  return result.success && last.hpl.residual.pass ? 0 : 1;
}
