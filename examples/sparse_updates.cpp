// Incremental self-checkpoint on a sparse-update workload: a distributed
// particle/cell store where each step touches a small, random subset of
// cells. The incremental protocol (dirty-stripe tracking + XOR checksum
// patching) makes checkpoints proportional to the touched volume — the
// opposite regime from HPL, whose full footprint is exactly why the paper
// rules incremental methods out for SKT-HPL.
//
//   ./sparse_updates [--ranks 8] [--cells-kib 1024] [--steps 20]
//                    [--touch-pct 4] [--kill-step 12]
#include <cstdio>
#include <cstring>

#include "ckpt/incremental.hpp"
#include "mpi/launcher.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace skt;

namespace {

struct SimState {
  std::uint64_t step = 0;
  std::uint64_t checksum = 0;  // running FNV over applied updates
};

void worker(mpi::Comm& world, std::size_t cell_bytes, int steps, int touch_pct,
            int kill_step, double* mean_commit_s, std::size_t* mean_flush) {
  mpi::Comm group = world.split(0, world.rank());
  ckpt::CommCtx ctx{world, group};

  ckpt::IncrementalSelfCheckpoint protocol(
      {.key_prefix = "sparse", .data_bytes = cell_bytes, .user_bytes = sizeof(SimState)});
  const bool restored = protocol.open(ctx);
  auto* state = reinterpret_cast<SimState*>(protocol.user_state().data());
  const std::span<std::byte> cells = protocol.data();

  if (restored) {
    const ckpt::RestoreStats rs = protocol.restore(ctx);
    SKT_LOG_INFO("resumed at step {} (epoch {})", state->step, rs.epoch);
  } else {
    state->step = 0;
    state->checksum = 1469598103934665603ull;
    std::memset(cells.data(), 0, cells.size());
  }

  const std::size_t window = cells.size() * static_cast<std::size_t>(touch_pct) / 100;
  double commit_total = 0.0;
  std::size_t flush_total = 0;
  int commits = 0;

  while (state->step < static_cast<std::uint64_t>(steps)) {
    const std::uint64_t next = state->step + 1;
    if (static_cast<int>(next) == kill_step) world.failpoint("sparse.kill");

    // Touch a pseudo-random window of cells; the schedule is a pure
    // function of (rank, step) so recovery replays identically.
    util::Xoshiro256 rng(next * 2654435761ull + static_cast<std::uint64_t>(world.rank()));
    const std::size_t offset =
        window >= cells.size() ? 0 : rng.next_below(cells.size() - window);
    for (std::size_t i = 0; i < window; ++i) {
      cells[offset + i] = static_cast<std::byte>(rng.next());
    }
    protocol.mark_dirty(offset, window);
    state->checksum = (state->checksum ^ offset) * 1099511628211ull;
    state->step = next;

    const ckpt::CommitStats stats = protocol.commit(ctx);
    commit_total += stats.total_s();
    flush_total += stats.checkpoint_bytes;
    ++commits;
  }

  if (world.rank() == 0 && commits > 0) {
    *mean_commit_s = commit_total / commits;
    *mean_flush = flush_total / static_cast<std::size_t>(commits);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  util::set_log_level(opts.get("log", "info"));
  const int ranks = static_cast<int>(opts.get_int("ranks", 8));
  const std::size_t cell_bytes =
      static_cast<std::size_t>(opts.get_int("cells-kib", 1024)) * 1024;
  const int steps = static_cast<int>(opts.get_int("steps", 20));
  const int touch_pct = static_cast<int>(opts.get_int("touch-pct", 4));
  const int kill_step = static_cast<int>(opts.get_int("kill-step", 12));

  sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 2, .nodes_per_rack = 4});
  sim::FailureInjector injector;
  injector.add_rule({.point = "sparse.kill", .world_rank = ranks / 2, .hit = 1,
                     .repeat = false});

  double mean_commit_s = 0.0;
  std::size_t mean_flush = 0;
  mpi::JobLauncher launcher(cluster, &injector, {.max_restarts = 2});
  const auto result = launcher.run(ranks, [&](mpi::Comm& w) {
    worker(w, cell_bytes, steps, touch_pct, kill_step, &mean_commit_s, &mean_flush);
  });

  std::printf("\n=== sparse-update workload with incremental self-checkpoint ===\n");
  util::Table table({"metric", "value"});
  table.add_row({"protected cells/rank", util::format_bytes(cell_bytes)});
  table.add_row({"touched per step", std::to_string(touch_pct) + "%"});
  table.add_row({"completed (with node loss at step " + std::to_string(kill_step) + ")",
                 result.success ? "yes" : "NO"});
  table.add_row({"restarts", std::to_string(result.restarts)});
  table.add_row({"mean flushed bytes/commit", util::format_bytes(mean_flush)});
  table.add_row({"mean commit time", util::format_seconds(mean_commit_s)});
  table.print();
  std::printf("(compare: a full checkpoint would flush %s every commit)\n",
              util::format_bytes(cell_bytes).c_str());
  return result.success ? 0 : 1;
}
