// Fault-tolerant 2-D Jacobi heat diffusion — shows that self-checkpoint is
// application-agnostic (Section 4: "more available memory has different
// meanings to different programs"). The field is decomposed by row blocks;
// each sweep exchanges halo rows with grid neighbours, then relaxes.
//
// The demo runs the solver twice: once fault-free, once with a node
// powered off mid-commit (inside the ckpt.mid_flush window — CASE 2 of the
// paper's Fig. 4), and asserts the recovered run converges to the
// *identical* field (bitwise, XOR codec).
//
// With --telemetry <prefix> the run records spans and metrics and writes
//   <prefix>_trace.json   Chrome trace_event timeline (failpoint hit,
//                         launcher recovery cycle, rebuild — Perfetto-ready)
//   <prefix>_report.json  RunReport with phase histograms + wire counters
// and self-validates that both artifacts contain the expected evidence.
//
// With --monitor <prefix> the faulty run additionally exercises the live
// monitoring stack: heartbeat-driven failure detection (the launcher's
// detect phase polls the HealthBoard and records the measured latency into
// the launcher.detect_latency_s histogram), a POSTMORTEM_ft_jacobi.json
// forensic record of the kill (lost rank, lost epoch, rebuilt stripes,
// Fig. 10 timeline), and a JSON-lines monitor feed at <prefix>_feed.jsonl
// (watch it live with scripts/monitor_demo.sh). --monitor implies
// --telemetry artifacts at the same prefix unless --telemetry is given.
//
// With --scrub <seconds> every Session also runs the background scrubber
// at that cadence (optionally with --parity m for an RS(k, m) group), and
// --bitflip injects a silent bit flip into a sealed checksum buffer after
// the first commit — the scrubber must catch and repair it from the
// mirror while the sweep loop keeps running, which the run validates via
// the scrub.* counters (visible in the RunReport).
//
// With --shards N the faulty run's session becomes multi-level: every
// other commit flushes to a ShardedVault spread over the job's first N
// nodes, the injected kill takes a shard host with it, and the launcher
// reshards (wipe dead shard, spare takes the slot, extents re-homed from
// replicas) before relaunch — validated via the vault.* gauges and
// ShardedVaultStats (visible in the RunReport).
//
//   ./ft_jacobi [--grid 128] [--ranks 4] [--iters 60] [--ckpt-every 10]
//               [--telemetry out/jacobi] [--monitor out/jacobi]
//               [--scrub 0.001] [--parity 2] [--bitflip] [--shards 4]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/session.hpp"
#include "mpi/launcher.hpp"
#include "storage/device.hpp"
#include "storage/sharded_vault.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace skt;

namespace {

struct JacobiState {
  std::int64_t iteration = 0;
};

constexpr mpi::Tag kTagHaloUp = 11;
constexpr mpi::Tag kTagHaloDown = 12;

/// Scrub-and-repair configuration for the demo (off by default).
struct ScrubDemo {
  double interval_s = 0.0;  ///< > 0 starts the background scrubber
  int parity = 1;           ///< erasure degree of the encoding group
  bool bitflip = false;     ///< inject a silent flip after the first commit
};

/// Flip one bit of a sealed, mirror-backed checkpoint region, then wait
/// for the BACKGROUND scrub pass to notice and repair it — the loop keeps
/// this rank alive but idle-spinning only inside this drill; the rest of
/// the solve runs at full speed. Throws when the repair never lands.
void bitflip_drill(ckpt::Session& session) {
  ckpt::Scrubber* scrubber = session.scrubber();
  if (scrubber == nullptr) throw std::invalid_argument("--bitflip requires --scrub");
  scrubber->scrub_now();  // make sure this epoch's baselines exist
  const ckpt::ScrubStats before = scrubber->stats();
  {
    std::lock_guard<std::mutex> lock(scrubber->commit_exclusion());
    for (ckpt::ScrubRegion& region : session.unsafe_protocol().scrub_view()) {
      if (region.mirror.empty()) continue;
      region.bytes[region.bytes.size() / 3] ^= std::byte{0x04};
      break;
    }
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scrubber->stats().repaired <= before.repaired) {
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("scrubber did not repair the injected bit flip");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const ckpt::ScrubStats after = scrubber->stats();
  if (after.corruption_detected <= before.corruption_detected ||
      after.unrepaired > before.unrepaired) {
    throw std::runtime_error("scrubber mis-handled the injected bit flip");
  }
}

/// One fault-tolerant Jacobi solve; returns the L2 norm of the final local
/// block (for cross-run comparison) via out-param on rank 0.
void jacobi(mpi::Comm& world, std::int64_t grid_n, std::int64_t iterations,
            std::int64_t ckpt_every, const ScrubDemo& scrub, storage::Vault* vault,
            double* final_norm) {
  const int ranks = world.size();
  const int me = world.rank();
  if (grid_n % ranks != 0) throw std::invalid_argument("grid must divide ranks");
  const std::int64_t rows = grid_n / ranks;  // interior rows per rank

  ckpt::SessionBuilder builder;
  builder.strategy(ckpt::Strategy::kSelf)
      .key_prefix("jacobi")
      .data_bytes(static_cast<std::size_t>(rows * grid_n) * sizeof(double))
      .user_bytes(sizeof(JacobiState))
      .parity_degree(scrub.parity)
      .scrub_interval(scrub.interval_s);
  if (vault != nullptr) {
    // --shards: wrap in a multi-level session flushing every other commit
    // to the sharded durable tier.
    builder.vault(vault).device(storage::ssd_profile()).level2_flush_every(2);
  }
  // group_size 0: one encoding group spanning the job
  ckpt::Session session = builder.build(world);

  const ckpt::OpenOutcome outcome = session.open();
  auto* state = reinterpret_cast<JacobiState*>(session.user_state().data());
  const std::span<double> field{reinterpret_cast<double*>(session.data().data()),
                                static_cast<std::size_t>(rows * grid_n)};

  if (outcome == ckpt::OpenOutcome::kRestored) {
    SKT_LOG_INFO("jacobi: resumed at iteration {}", state->iteration);
  } else {
    state->iteration = 0;
    // Hot square in the middle of the global field, zero elsewhere.
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t gr = me * rows + r;
      for (std::int64_t c = 0; c < grid_n; ++c) {
        const bool hot = gr > grid_n / 3 && gr < 2 * grid_n / 3 && c > grid_n / 3 &&
                         c < 2 * grid_n / 3;
        field[static_cast<std::size_t>(r * grid_n + c)] = hot ? 100.0 : 0.0;
      }
    }
  }

  std::vector<double> halo_above(static_cast<std::size_t>(grid_n), 0.0);
  std::vector<double> halo_below(static_cast<std::size_t>(grid_n), 0.0);
  std::vector<double> next(field.size());

  while (state->iteration < iterations) {
    world.failpoint("jacobi.sweep");
    // Halo exchange with neighbouring row blocks (domain boundary = 0).
    if (me > 0) {
      world.send<double>(me - 1, kTagHaloUp, field.subspan(0, static_cast<std::size_t>(grid_n)));
    }
    if (me < ranks - 1) {
      world.send<double>(me + 1, kTagHaloDown,
                         field.subspan(static_cast<std::size_t>((rows - 1) * grid_n)));
    }
    if (me > 0) {
      world.recv<double>(me - 1, kTagHaloDown, halo_above);
    } else {
      std::fill(halo_above.begin(), halo_above.end(), 0.0);
    }
    if (me < ranks - 1) {
      world.recv<double>(me + 1, kTagHaloUp, halo_below);
    } else {
      std::fill(halo_below.begin(), halo_below.end(), 0.0);
    }

    for (std::int64_t r = 0; r < rows; ++r) {
      const double* up = r == 0 ? halo_above.data() : &field[static_cast<std::size_t>((r - 1) * grid_n)];
      const double* down =
          r == rows - 1 ? halo_below.data() : &field[static_cast<std::size_t>((r + 1) * grid_n)];
      const double* cur = &field[static_cast<std::size_t>(r * grid_n)];
      double* out = &next[static_cast<std::size_t>(r * grid_n)];
      for (std::int64_t c = 0; c < grid_n; ++c) {
        const double left = c == 0 ? 0.0 : cur[c - 1];
        const double right = c == grid_n - 1 ? 0.0 : cur[c + 1];
        out[c] = 0.25 * (up[c] + down[c] + left + right);
      }
    }
    std::memcpy(field.data(), next.data(), next.size() * sizeof(double));
    state->iteration += 1;
    if (ckpt_every > 0 && state->iteration % ckpt_every == 0) {
      session.commit();
      // The silent-corruption drill rides on the FIRST commit, well before
      // the mid-run kill of the faulty pass.
      if (scrub.bitflip && state->iteration == ckpt_every) bitflip_drill(session);
    }
  }

  double local = 0.0;
  for (double v : field) local += v * v;
  const double norm = std::sqrt(world.allreduce_value<double>(local, mpi::Sum{}));
  if (me == 0 && final_norm != nullptr) *final_norm = norm;
}

/// Check the recorded telemetry for the evidence the faulty run must leave:
/// the failpoint instant, a launcher recovery cycle, and the restore span.
/// Returns true when everything is present; prints what is missing.
bool validate_telemetry(std::uint64_t restores_before) {
  bool saw_fail = false;
  bool saw_replace = false;
  bool saw_restore = false;
  for (const auto& rec : telemetry::Tracer::instance().collect()) {
    if (std::strcmp(rec.name, "fail:ckpt.mid_flush") == 0 && rec.instant()) saw_fail = true;
    if (std::strcmp(rec.name, "launcher.replace") == 0) saw_replace = true;
    if (std::strcmp(rec.name, "ckpt.restore") == 0) saw_restore = true;
  }
  const auto snap = telemetry::metrics().snapshot();
  const auto counter = [&snap](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  bool ok = true;
  if (!saw_fail) {
    std::printf("telemetry: missing fail:ckpt.mid_flush instant event\n");
    ok = false;
  }
  if (!saw_replace) {
    std::printf("telemetry: missing launcher.replace span\n");
    ok = false;
  }
  if (!saw_restore) {
    std::printf("telemetry: missing ckpt.restore span\n");
    ok = false;
  }
  if (counter("ckpt.commits") == 0) {
    std::printf("telemetry: ckpt.commits counter is zero\n");
    ok = false;
  }
  if (counter("ckpt.restores") <= restores_before) {
    std::printf("telemetry: no restore recorded by the faulty run\n");
    ok = false;
  }
  if (counter("mpi.wire_bytes") == 0) {
    std::printf("telemetry: mpi.wire_bytes counter is zero\n");
    ok = false;
  }
  const auto hist = snap.histograms.find("ckpt.commit_s");
  if (hist == snap.histograms.end() || hist->second.count == 0) {
    std::printf("telemetry: ckpt.commit_s histogram is empty\n");
    ok = false;
  }
  return ok;
}

/// Check the evidence the monitored faulty run must leave: a postmortem
/// naming the lost rank/epoch and its rebuilt stripes, a measured
/// detection latency, live aggregator ticks, and the JSONL feed on disk.
bool validate_monitor(const mpi::LaunchResult& result, std::uint64_t ticks,
                      const std::string& feed_path) {
  bool ok = true;
  if (result.postmortems.empty()) {
    std::printf("monitor: no postmortem produced for the injected failure\n");
    return false;
  }
  const telemetry::Postmortem& pm = result.postmortems.front();
  if (pm.lost_ranks.empty()) {
    std::printf("monitor: postmortem names no lost rank\n");
    ok = false;
  }
  if (pm.lost_epoch == 0) {
    std::printf("monitor: postmortem has no committed epoch at the kill\n");
    ok = false;
  }
  if (!pm.recovered || pm.rebuilds.empty() ||
      pm.rebuilds.front().stripe_count == 0 || pm.rebuilds.front().peers.empty()) {
    std::printf("monitor: postmortem lacks the rebuilt stripe set / peers\n");
    ok = false;
  }
  if (result.cycles.empty() || result.cycles.front().detect_latency_s < 0.0) {
    std::printf("monitor: detection latency was not measured\n");
    ok = false;
  }
  const auto snap = telemetry::metrics().snapshot();
  const auto hist = snap.histograms.find("launcher.detect_latency_s");
  if (hist == snap.histograms.end() || hist->second.count == 0) {
    std::printf("monitor: launcher.detect_latency_s histogram is empty\n");
    ok = false;
  }
  if (ticks == 0) {
    std::printf("monitor: aggregator never ticked\n");
    ok = false;
  }
  if (std::FILE* f = std::fopen(feed_path.c_str(), "r")) {
    std::fclose(f);
  } else {
    std::printf("monitor: feed file %s missing\n", feed_path.c_str());
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  util::set_log_level(opts.get("log", "info"));
  const std::int64_t grid_n = opts.get_int("grid", 128);
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  const std::int64_t iterations = opts.get_int("iters", 60);
  const std::int64_t ckpt_every = opts.get_int("ckpt-every", 10);
  const std::string monitor_prefix = opts.get("monitor", "");
  std::string telemetry_prefix = opts.get("telemetry", "");
  if (telemetry_prefix.empty()) telemetry_prefix = monitor_prefix;
  if (!telemetry_prefix.empty()) telemetry::set_enabled(true);

  ScrubDemo scrub;
  scrub.interval_s = opts.get_double("scrub", 0.0);
  scrub.parity = static_cast<int>(opts.get_int("parity", 1));
  scrub.bitflip = opts.has("bitflip");
  // --shards N: back the faulty run's level-2 tier with a ShardedVault
  // over the job's first N nodes; the launcher reshards it when the
  // injected kill takes a shard host down.
  const int shards = static_cast<int>(opts.get_int("shards", 0));
  if (shards > ranks) {
    std::printf("--shards %d exceeds the %d job nodes\n", shards, ranks);
    return 1;
  }

  // Reference: fault-free run.
  double clean_norm = 0.0;
  {
    sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 0, .nodes_per_rack = 4});
    mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 0});
    const auto result = launcher.run(ranks, [&](mpi::Comm& w) {
      jacobi(w, grid_n, iterations, ckpt_every, scrub, nullptr, &clean_norm);
    });
    if (!result.success) {
      std::printf("clean run failed: %s\n", result.failure.c_str());
      return 1;
    }
  }

  // Faulty run: power off a node mid-commit, inside the flush window between
  // the two checkpoint halves (CASE 2 — the sealed epoch must still recover).
  std::uint64_t restores_before = 0;
  {
    const auto snap = telemetry::metrics().snapshot();
    const auto it = snap.counters.find("ckpt.restores");
    if (it != snap.counters.end()) restores_before = it->second;
  }
  double faulty_norm = -1.0;
  int restarts = 0;
  bool monitor_ok = true;
  std::uint64_t monitor_ticks = 0;
  std::size_t postmortems = 0;
  double detect_latency_s = -1.0;
  std::optional<storage::ShardedVault> vault;
  {
    sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 2, .nodes_per_rack = 4});
    sim::FailureInjector injector;
    const int kill_commit =
        ckpt_every > 0 ? std::max<int>(1, static_cast<int>(iterations / (2 * ckpt_every))) : 1;
    injector.add_rule({.point = "ckpt.mid_flush",
                       .world_rank = ranks / 2,
                       .hit = kill_commit,
                       .repeat = false});
    mpi::LauncherConfig launch_config{.max_restarts = 2};
    if (shards > 0) {
      storage::ShardedVaultConfig vc;
      for (int n = 0; n < shards; ++n) vc.nodes.push_back(n);
      vault.emplace(vc);
      launch_config.sharded_vault = &*vault;
    }
    std::optional<telemetry::Aggregator> monitor;
    if (!monitor_prefix.empty()) {
      launch_config.health.enabled = true;
      launch_config.postmortem_name = "ft_jacobi";
      telemetry::AggregatorConfig mc;
      mc.interval_s = 0.02;
      mc.feed_path = monitor_prefix + "_feed.jsonl";
      monitor.emplace(mc);
      monitor->start();
    }
    mpi::JobLauncher launcher(cluster, &injector, launch_config);
    const auto result = launcher.run(ranks, [&](mpi::Comm& w) {
      jacobi(w, grid_n, iterations, ckpt_every, scrub,
             vault.has_value() ? &*vault : nullptr, &faulty_norm);
    });
    if (monitor) monitor->stop();
    if (!result.success) {
      std::printf("faulty run failed: %s\n", result.failure.c_str());
      return 1;
    }
    restarts = result.restarts;
    if (monitor) {
      monitor_ticks = monitor->ticks();
      postmortems = result.postmortems.size();
      if (!result.cycles.empty()) detect_latency_s = result.cycles.front().detect_latency_s;
      monitor_ok = validate_monitor(result, monitor_ticks, monitor_prefix + "_feed.jsonl");
    }
  }

  const bool identical = clean_norm == faulty_norm;

  // Sharded-vault evidence: the injected kill took a shard host down, so
  // the launcher must have resharded (unless the killed node hosted no
  // shard), and no extent may have been lost — a single shard death always
  // leaves the replica copy.
  bool vault_ok = true;
  storage::ShardedVaultStats vault_stats;
  if (vault.has_value()) {
    vault_stats = vault->stats();
    if (restarts > 0 && ranks / 2 < shards && vault_stats.rebalances == 0) {
      std::printf("vault: shard host %d died but no reshard ran\n", ranks / 2);
      vault_ok = false;
    }
    if (vault_stats.extents_lost != 0) {
      std::printf("vault: %llu extents lost during reshard\n",
                  static_cast<unsigned long long>(vault_stats.extents_lost));
      vault_ok = false;
    }
  }

  // Scrub evidence: every rank of both runs ran the scrubber; with
  // --bitflip each injected flip must have been detected AND repaired,
  // and nothing may remain unrepaired (every demo region is mirror-backed
  // or untouched).
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_detected = 0;
  std::uint64_t scrub_repaired = 0;
  std::uint64_t scrub_unrepaired = 0;
  bool scrub_ok = true;
  if (scrub.interval_s > 0.0) {
    scrub_passes = telemetry::metrics().counter("scrub.passes").value();
    scrub_detected = telemetry::metrics().counter("scrub.corruption_detected").value();
    scrub_repaired = telemetry::metrics().counter("scrub.repaired").value();
    scrub_unrepaired = telemetry::metrics().counter("scrub.unrepaired").value();
    if (scrub_passes == 0) {
      std::printf("scrub: the background scrubber never completed a pass\n");
      scrub_ok = false;
    }
    if (scrub.bitflip && (scrub_detected == 0 || scrub_repaired == 0)) {
      std::printf("scrub: injected bit flip was not detected/repaired\n");
      scrub_ok = false;
    }
    if (scrub_unrepaired != 0) {
      std::printf("scrub: %llu chunks were detected but NOT repaired\n",
                  static_cast<unsigned long long>(scrub_unrepaired));
      scrub_ok = false;
    }
  }

  bool telemetry_ok = true;
  if (!telemetry_prefix.empty()) {
    telemetry_ok = validate_telemetry(restores_before);

    const std::string trace_path = telemetry_prefix + "_trace.json";
    if (!telemetry::Tracer::instance().export_chrome_trace(trace_path)) {
      std::printf("telemetry: could not write %s\n", trace_path.c_str());
      telemetry_ok = false;
    }

    telemetry::RunReport report("ft_jacobi");
    report.set("grid_n", grid_n);
    report.set("ranks", static_cast<std::int64_t>(ranks));
    report.set("iterations", iterations);
    report.set("ckpt_every", ckpt_every);
    report.set("clean_norm", clean_norm);
    report.set("faulty_norm", faulty_norm);
    report.set("restarts", static_cast<std::int64_t>(restarts));
    report.set("identical", identical);
    if (!monitor_prefix.empty()) {
      report.set("monitor_ticks", monitor_ticks);
      report.set("postmortems", static_cast<std::uint64_t>(postmortems));
      report.set("detect_latency_s", detect_latency_s);
    }
    if (vault.has_value()) {
      report.set("vault_shards", static_cast<std::int64_t>(shards));
      report.set("vault_rebalances", vault_stats.rebalances);
      report.set("vault_extents_rehomed", vault_stats.extents_rehomed);
      report.set("vault_extents_lost", vault_stats.extents_lost);
      report.set("vault_degraded_reads", vault_stats.degraded_reads);
    }
    if (scrub.interval_s > 0.0) {
      report.set("scrub_interval_s", scrub.interval_s);
      report.set("scrub_parity", static_cast<std::int64_t>(scrub.parity));
      report.set("scrub_passes", scrub_passes);
      report.set("scrub_corruption_detected", scrub_detected);
      report.set("scrub_repaired", scrub_repaired);
      report.set("scrub_unrepaired", scrub_unrepaired);
    }
    const std::string report_path = telemetry_prefix + "_report.json";
    if (!report.write(report_path)) {
      std::printf("telemetry: could not write %s\n", report_path.c_str());
      telemetry_ok = false;
    }
  }

  std::printf("\n=== fault-tolerant Jacobi ===\n");
  util::Table table({"metric", "value"});
  table.add_row({"grid", std::to_string(grid_n) + " x " + std::to_string(grid_n)});
  table.add_row({"iterations", std::to_string(iterations)});
  table.add_row({"fault-free field norm", util::format("{:.9e}", clean_norm)});
  table.add_row({"recovered field norm", util::format("{:.9e}", faulty_norm)});
  table.add_row({"node losses survived", std::to_string(restarts)});
  table.add_row({"bitwise identical result", identical ? "yes" : "NO"});
  if (!telemetry_prefix.empty()) {
    table.add_row({"telemetry artifacts", telemetry_ok ? "written + validated" : "INCOMPLETE"});
  }
  if (vault.has_value()) {
    table.add_row({"vault shards", std::to_string(shards)});
    table.add_row({"vault reshards / extents re-homed",
                   std::to_string(vault_stats.rebalances) + " / " +
                       std::to_string(vault_stats.extents_rehomed)});
    table.add_row({"vault evidence", vault_ok ? "validated" : "INCOMPLETE"});
  }
  if (scrub.interval_s > 0.0) {
    table.add_row({"scrub passes", std::to_string(scrub_passes)});
    table.add_row({"scrub detected/repaired", std::to_string(scrub_detected) + "/" +
                                                  std::to_string(scrub_repaired)});
    table.add_row({"scrub evidence", scrub_ok ? "validated" : "INCOMPLETE"});
  }
  if (!monitor_prefix.empty()) {
    table.add_row({"monitor ticks", std::to_string(monitor_ticks)});
    table.add_row({"postmortems written", std::to_string(postmortems)});
    if (detect_latency_s >= 0.0) {
      table.add_row({"measured detect latency", util::format_seconds(detect_latency_s)});
    }
    table.add_row({"monitor evidence", monitor_ok ? "validated" : "INCOMPLETE"});
  }
  table.print();
  return identical && telemetry_ok && monitor_ok && scrub_ok && vault_ok ? 0 : 1;
}
