// Fault-tolerant 2-D Jacobi heat diffusion — shows that self-checkpoint is
// application-agnostic (Section 4: "more available memory has different
// meanings to different programs"). The field is decomposed by row blocks;
// each sweep exchanges halo rows with grid neighbours, then relaxes.
//
// The demo runs the solver twice: once fault-free, once with a node
// powered off mid-run, and asserts the recovered run converges to the
// *identical* field (bitwise, XOR codec).
//
//   ./ft_jacobi [--grid 128] [--ranks 4] [--iters 60] [--ckpt-every 10]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "ckpt/factory.hpp"
#include "mpi/launcher.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace skt;

namespace {

struct JacobiState {
  std::int64_t iteration = 0;
};

constexpr mpi::Tag kTagHaloUp = 11;
constexpr mpi::Tag kTagHaloDown = 12;

/// One fault-tolerant Jacobi solve; returns the L2 norm of the final local
/// block (for cross-run comparison) via out-param on rank 0.
void jacobi(mpi::Comm& world, std::int64_t grid_n, std::int64_t iterations,
            std::int64_t ckpt_every, double* final_norm) {
  const int ranks = world.size();
  const int me = world.rank();
  if (grid_n % ranks != 0) throw std::invalid_argument("grid must divide ranks");
  const std::int64_t rows = grid_n / ranks;  // interior rows per rank

  mpi::Comm group = world.split(0, me);  // one group spanning the job
  ckpt::CommCtx ctx{world, group};

  ckpt::FactoryParams params;
  params.key_prefix = "jacobi";
  params.data_bytes = static_cast<std::size_t>(rows * grid_n) * sizeof(double);
  params.user_bytes = sizeof(JacobiState);
  auto protocol = ckpt::make_protocol(ckpt::Strategy::kSelf, params);

  const bool restored = protocol->open(ctx);
  auto* state = reinterpret_cast<JacobiState*>(protocol->user_state().data());
  const std::span<double> field{reinterpret_cast<double*>(protocol->data().data()),
                                static_cast<std::size_t>(rows * grid_n)};

  if (restored) {
    protocol->restore(ctx);
    SKT_LOG_INFO("jacobi: resumed at iteration {}", state->iteration);
  } else {
    state->iteration = 0;
    // Hot square in the middle of the global field, zero elsewhere.
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t gr = me * rows + r;
      for (std::int64_t c = 0; c < grid_n; ++c) {
        const bool hot = gr > grid_n / 3 && gr < 2 * grid_n / 3 && c > grid_n / 3 &&
                         c < 2 * grid_n / 3;
        field[static_cast<std::size_t>(r * grid_n + c)] = hot ? 100.0 : 0.0;
      }
    }
  }

  std::vector<double> halo_above(static_cast<std::size_t>(grid_n), 0.0);
  std::vector<double> halo_below(static_cast<std::size_t>(grid_n), 0.0);
  std::vector<double> next(field.size());

  while (state->iteration < iterations) {
    world.failpoint("jacobi.sweep");
    // Halo exchange with neighbouring row blocks (domain boundary = 0).
    if (me > 0) {
      world.send<double>(me - 1, kTagHaloUp, field.subspan(0, static_cast<std::size_t>(grid_n)));
    }
    if (me < ranks - 1) {
      world.send<double>(me + 1, kTagHaloDown,
                         field.subspan(static_cast<std::size_t>((rows - 1) * grid_n)));
    }
    if (me > 0) {
      world.recv<double>(me - 1, kTagHaloDown, halo_above);
    } else {
      std::fill(halo_above.begin(), halo_above.end(), 0.0);
    }
    if (me < ranks - 1) {
      world.recv<double>(me + 1, kTagHaloUp, halo_below);
    } else {
      std::fill(halo_below.begin(), halo_below.end(), 0.0);
    }

    for (std::int64_t r = 0; r < rows; ++r) {
      const double* up = r == 0 ? halo_above.data() : &field[static_cast<std::size_t>((r - 1) * grid_n)];
      const double* down =
          r == rows - 1 ? halo_below.data() : &field[static_cast<std::size_t>((r + 1) * grid_n)];
      const double* cur = &field[static_cast<std::size_t>(r * grid_n)];
      double* out = &next[static_cast<std::size_t>(r * grid_n)];
      for (std::int64_t c = 0; c < grid_n; ++c) {
        const double left = c == 0 ? 0.0 : cur[c - 1];
        const double right = c == grid_n - 1 ? 0.0 : cur[c + 1];
        out[c] = 0.25 * (up[c] + down[c] + left + right);
      }
    }
    std::memcpy(field.data(), next.data(), next.size() * sizeof(double));
    state->iteration += 1;
    if (ckpt_every > 0 && state->iteration % ckpt_every == 0) protocol->commit(ctx);
  }

  double local = 0.0;
  for (double v : field) local += v * v;
  const double norm = std::sqrt(world.allreduce_value<double>(local, mpi::Sum{}));
  if (me == 0 && final_norm != nullptr) *final_norm = norm;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  util::set_log_level(opts.get("log", "info"));
  const std::int64_t grid_n = opts.get_int("grid", 128);
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  const std::int64_t iterations = opts.get_int("iters", 60);
  const std::int64_t ckpt_every = opts.get_int("ckpt-every", 10);

  // Reference: fault-free run.
  double clean_norm = 0.0;
  {
    sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 0, .nodes_per_rack = 4});
    mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 0});
    const auto result = launcher.run(ranks, [&](mpi::Comm& w) {
      jacobi(w, grid_n, iterations, ckpt_every, &clean_norm);
    });
    if (!result.success) {
      std::printf("clean run failed: %s\n", result.failure.c_str());
      return 1;
    }
  }

  // Faulty run: power off a node halfway through.
  double faulty_norm = -1.0;
  int restarts = 0;
  {
    sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 2, .nodes_per_rack = 4});
    sim::FailureInjector injector;
    injector.add_rule({.point = "jacobi.sweep",
                       .world_rank = ranks / 2,
                       .hit = static_cast<int>(iterations / 2),
                       .repeat = false});
    mpi::JobLauncher launcher(cluster, &injector, {.max_restarts = 2});
    const auto result = launcher.run(ranks, [&](mpi::Comm& w) {
      jacobi(w, grid_n, iterations, ckpt_every, &faulty_norm);
    });
    if (!result.success) {
      std::printf("faulty run failed: %s\n", result.failure.c_str());
      return 1;
    }
    restarts = result.restarts;
  }

  const bool identical = clean_norm == faulty_norm;
  std::printf("\n=== fault-tolerant Jacobi ===\n");
  util::Table table({"metric", "value"});
  table.add_row({"grid", std::to_string(grid_n) + " x " + std::to_string(grid_n)});
  table.add_row({"iterations", std::to_string(iterations)});
  table.add_row({"fault-free field norm", util::format("{:.9e}", clean_norm)});
  table.add_row({"recovered field norm", util::format("{:.9e}", faulty_norm)});
  table.add_row({"node losses survived", std::to_string(restarts)});
  table.add_row({"bitwise identical result", identical ? "yes" : "NO"});
  table.print();
  return identical ? 0 : 1;
}
