// Quickstart: protect an iterative computation with self-checkpoint and
// survive a node power-off.
//
//   ./quickstart [--ranks 8] [--group 4] [--iters 12] [--kill-at 7]
//
// The program runs `ranks` simulated MPI ranks, each owning a vector it
// rewrites every iteration. A failure injector powers off one node in the
// middle of the run; the job-launcher daemon replaces it with a spare,
// restarts, the self-checkpoint protocol rebuilds the lost rank's data
// from the group's checksums, and the run completes with verified data.
#include <cstdio>
#include <cstring>

#include "ckpt/session.hpp"
#include "mpi/launcher.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace skt;

namespace {

struct LoopState {
  std::int64_t iteration = 0;
};

void worker(mpi::Comm& world, int group_size, int iterations, int kill_at) {
  // The Session owns the encoding-group communicator (one group per
  // `group_size` consecutive ranks) and restores on open after a restart.
  ckpt::Session session = ckpt::SessionBuilder{}
                              .strategy(ckpt::Strategy::kSelf)
                              .key_prefix("quickstart")
                              .data_bytes(64 * 1024)
                              .user_bytes(sizeof(LoopState))
                              .group_size(group_size)
                              .build(world);

  const ckpt::OpenOutcome outcome = session.open();
  auto* state = reinterpret_cast<LoopState*>(session.user_state().data());
  const std::span<double> data{reinterpret_cast<double*>(session.data().data()),
                               session.data().size() / sizeof(double)};

  if (outcome == ckpt::OpenOutcome::kRestored) {
    const ckpt::RestoreStats rs = session.last_restore().value();
    SKT_LOG_INFO("recovered to iteration {} (epoch {}, rebuilt={})", state->iteration,
                 rs.epoch, rs.rebuilt_member);
  } else {
    state->iteration = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = util::element_value(1, static_cast<std::uint64_t>(world.rank()), i);
    }
  }

  while (state->iteration < iterations) {
    // The "computation": a full rewrite of the working set, like HPL's
    // elimination step touching every byte between checkpoints.
    const std::int64_t next = state->iteration + 1;
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = data[i] * 0.5 +
                util::element_value(static_cast<std::uint64_t>(next),
                                    static_cast<std::uint64_t>(world.rank()), i);
    }
    state->iteration = next;
    if (next == kill_at) world.failpoint("quickstart.kill");
    session.commit();
    if (world.rank() == 0) SKT_LOG_INFO("committed iteration {}", next);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.get_int("ranks", 8));
  const int group_size = static_cast<int>(opts.get_int("group", 4));
  const int iterations = static_cast<int>(opts.get_int("iters", 12));
  const int kill_at = static_cast<int>(opts.get_int("kill-at", 7));
  util::set_log_level(opts.get("log", "info"));

  sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 2, .nodes_per_rack = 4});
  sim::FailureInjector injector;
  // Power off rank 1's node the first time iteration `kill_at` is reached.
  injector.add_rule({.point = "quickstart.kill", .world_rank = 1, .hit = 1, .repeat = false});

  mpi::JobLauncher launcher(cluster, &injector, {.max_restarts = 3, .detect_delay_s = 2.0});
  const mpi::LaunchResult result = launcher.run(
      ranks, [&](mpi::Comm& w) { worker(w, group_size, iterations, kill_at); });

  std::printf("\n=== quickstart summary ===\n");
  util::Table table({"metric", "value"});
  table.add_row({"completed", result.success ? "yes" : "no"});
  table.add_row({"restarts", std::to_string(result.restarts)});
  table.add_row({"checkpoint time (max)",
                 util::format_seconds(result.times.count("checkpoint")
                                          ? result.times.at("checkpoint")
                                          : 0.0)});
  table.add_row({"recovery time (max)",
                 util::format_seconds(result.times.count("recover")
                                          ? result.times.at("recover")
                                          : 0.0)});
  table.add_row({"wall time", util::format_seconds(result.total_real_s)});
  table.print();
  return result.success ? 0 : 1;
}
