// Checkpoint store as a service — one StoreService carries four tenants
// on one shared cluster while nodes die:
//
//   hpl-a       4-rank SKT-HPL solve (sync commits)
//   jacobi-b    4-rank iterative app on the ASYNC pipeline; loses a node
//               mid-flush and must restore its own epoch from the group
//   accel-c     2-rank accelerator job (device-resident working set,
//               download-then-commit each epoch)
//   bystander-d 2-rank job that commits once and exits before the storm —
//               its namespaced stripes must sit out every other tenant's
//               kill/restore bit-identically
//
// Each job gets its own JobLauncher over a DISJOINT primary-node range
// (LauncherConfig::first_node); the spare pool, the per-node SHM stores,
// and the StoreService (quotas, admission, fair-share commit turnstile)
// are shared. The run validates:
//
//   * only the killed tenant restarts, and it recovers its own epoch
//   * the bystander's stripes are bit-identical across the storm
//   * an over-quota probe tenant is rejected LOUDLY before allocating
//   * the fair-share dispatch keeps the per-tenant commit-slowdown
//     spread above 0.5 (store.fairness_ratio)
//
// With --monitor <prefix> (or --telemetry <prefix>) the run writes
// <prefix>_report.json — a RunReport whose metrics section carries the
// per-tenant store.* gauges (bytes, quotas, commits, throughput) plus the
// service-wide capacity/fairness picture; scripts/check.sh jq-validates
// it in the multi_tenant lane.
//
//   ./multi_tenant [--iters 6] [--monitor out/mt]
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/session.hpp"
#include "ckpt/store_service.hpp"
#include "hpl/skt_hpl.hpp"
#include "mpi/launcher.hpp"
#include "sim/accelerator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace skt;

namespace {

struct AppState {
  std::uint64_t iteration = 0;
};

/// FNV-1a over every (key, bytes) pair `owner` holds anywhere in the
/// cluster — the bit-identity witness for the bystander's stripes.
std::uint64_t owner_digest(sim::Cluster& cluster, const std::string& owner,
                           std::size_t* segments = nullptr) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t count = 0;
  for (int n = 0; n < cluster.total_nodes(); ++n) {
    for (const auto& [key, seg] : cluster.node(n).store().segments_of(owner)) {
      ++count;
      for (const char c : key) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      for (const std::byte b : seg->bytes()) {
        h = (h ^ std::to_integer<unsigned char>(b)) * 1099511628211ull;
      }
    }
  }
  if (segments != nullptr) *segments = count;
  return h;
}

void fill_pattern(std::span<std::byte> data, std::uint64_t seed, int rank,
                  std::uint64_t iteration) {
  std::span<double> lanes{reinterpret_cast<double*>(data.data()),
                          data.size() / sizeof(double)};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes[i] = util::element_value(seed + iteration, static_cast<std::uint64_t>(rank), i);
  }
}

bool matches_pattern(std::span<const std::byte> data, std::uint64_t seed, int rank,
                     std::uint64_t iteration) {
  std::span<const double> lanes{reinterpret_cast<const double*>(data.data()),
                                data.size() / sizeof(double)};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i] !=
        util::element_value(seed + iteration, static_cast<std::uint64_t>(rank), i)) {
      return false;
    }
  }
  return true;
}

/// The jacobi-b / bystander-d rank body: rewrite the whole protected
/// buffer each iteration, commit, verify after any restore. Counts the
/// restores it performed so the driver can assert WHO recovered.
void pattern_app(mpi::Comm& world, ckpt::StoreService& service, const std::string& tenant,
                 std::size_t data_bytes, int iterations, ckpt::CommitMode mode,
                 std::uint64_t seed, std::atomic<int>& restores) {
  ckpt::Session session = ckpt::SessionBuilder{}
                              .strategy(ckpt::Strategy::kSelf)
                              .key_prefix("app")
                              .data_bytes(data_bytes)
                              .user_bytes(sizeof(AppState))
                              .mode(mode)
                              .service(&service)
                              .tenant(tenant)
                              .build(world);
  auto* state = reinterpret_cast<AppState*>(session.user_state().data());
  if (session.open() == ckpt::OpenOutcome::kRestored) {
    restores.fetch_add(1);
    if (!matches_pattern(session.data(), seed, world.rank(), state->iteration)) {
      throw std::runtime_error(tenant + ": restored data does not match its epoch");
    }
  } else {
    state->iteration = 0;
    fill_pattern(session.data(), seed, world.rank(), 0);
  }
  const bool async = mode == ckpt::CommitMode::kAsync;
  while (state->iteration < static_cast<std::uint64_t>(iterations)) {
    world.failpoint("app.work");
    state->iteration += 1;
    fill_pattern(session.data(), seed, world.rank(), state->iteration);
    session.mark_all_dirty();
    if (async) {
      session.commit_async();
    } else {
      session.commit();
    }
  }
  if (async) session.drain();
  if (!matches_pattern(session.data(), seed, world.rank(),
                       static_cast<std::uint64_t>(iterations))) {
    throw std::runtime_error(tenant + ": final data mismatch");
  }
}

/// The accel-c rank body: the working set lives on a simulated
/// accelerator; every epoch runs an in-place device kernel, downloads the
/// device memory into the session's protected region, and commits.
void accel_app(mpi::Comm& world, ckpt::StoreService& service, const std::string& tenant,
               std::size_t data_bytes, int iterations) {
  ckpt::Session session = ckpt::SessionBuilder{}
                              .strategy(ckpt::Strategy::kSelf)
                              .key_prefix("app")
                              .data_bytes(data_bytes)
                              .user_bytes(sizeof(AppState))
                              .service(&service)
                              .tenant(tenant)
                              .build(world);
  auto* state = reinterpret_cast<AppState*>(session.user_state().data());
  sim::Accelerator device(data_bytes);
  const ckpt::OpenOutcome outcome = session.open();
  if (outcome == ckpt::OpenOutcome::kRestored) {
    device.upload(session.data());  // resume the device from the checkpoint
  } else {
    state->iteration = 0;
    fill_pattern(session.data(), 31, world.rank(), 0);
    device.upload(session.data());
  }
  while (state->iteration < static_cast<std::uint64_t>(iterations)) {
    world.failpoint("app.work");
    // Device-side "kernel": deterministic in-place mutation.
    for (double& v : std::span{reinterpret_cast<double*>(device.memory().data()),
                               data_bytes / sizeof(double)}) {
      v = v * 1.0009765625 + 1.0;
    }
    state->iteration += 1;
    device.download(session.data());
    session.commit();
  }
  // The committed image must equal the device's view bit-for-bit.
  std::vector<std::byte> check(data_bytes);
  device.download(check);
  if (std::memcmp(check.data(), session.data().data(), data_bytes) != 0) {
    throw std::runtime_error(tenant + ": committed image diverged from the device");
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  util::set_log_level(opts.get("log", "warn"));
  const int iterations = static_cast<int>(opts.get_int("iters", 6));
  const std::string monitor_prefix = opts.get("monitor", "");
  std::string telemetry_prefix = opts.get("telemetry", "");
  if (telemetry_prefix.empty()) telemetry_prefix = monitor_prefix;
  if (!telemetry_prefix.empty()) telemetry::set_enabled(true);

  // One cluster: hpl-a on nodes 0..3, jacobi-b on 4..7, accel-c on 8..9,
  // bystander-d on 10..11; two spares shared by everyone.
  sim::Cluster cluster({.num_nodes = 12, .spare_nodes = 2, .nodes_per_rack = 4});

  ckpt::StoreService service({.capacity_bytes = 64u << 20, .max_concurrent_commits = 2});
  service.register_tenant({.name = "hpl-a", .quota_bytes = 16u << 20});
  service.register_tenant({.name = "jacobi-b", .quota_bytes = 16u << 20});
  service.register_tenant({.name = "accel-c", .quota_bytes = 16u << 20});
  service.register_tenant({.name = "bystander-d", .quota_bytes = 16u << 20});
  service.register_tenant({.name = "probe-e", .quota_bytes = 1024});  // absurdly small

  // -------------------------------------------------- bystander epoch --
  // Commits once, exits; its stripes stay in the node stores (SHM
  // semantics) and must survive the coming storm untouched.
  std::atomic<int> bystander_restores{0};
  {
    mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 0, .first_node = 10});
    const auto result = launcher.run(2, [&](mpi::Comm& w) {
      pattern_app(w, service, "bystander-d", 8192, 1, ckpt::CommitMode::kSync, 77,
                  bystander_restores);
    });
    if (!result.success) {
      std::printf("bystander job failed: %s\n", result.failure.c_str());
      return 1;
    }
  }
  std::size_t bystander_segments = 0;
  const std::uint64_t bystander_before = owner_digest(
      cluster, ckpt::StoreService::namespace_prefix("bystander-d"), &bystander_segments);

  // ------------------------------------------- three concurrent tenants --
  std::atomic<int> jacobi_restores{0};
  mpi::LaunchResult hpl_result;
  mpi::LaunchResult jacobi_result;
  mpi::LaunchResult accel_result;
  hpl::SktHplResult hpl_run;

  std::thread hpl_job([&] {
    hpl::SktHplConfig config;
    config.hpl = {.n = 64, .nb = 8, .grid_p = 2, .grid_q = 2, .seed = 42};
    config.strategy = ckpt::Strategy::kSelf;
    config.group_size = 4;
    config.ckpt_every_panels = 2;
    config.key_prefix = "hpl";
    config.service = &service;
    config.tenant = "hpl-a";
    mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 0, .first_node = 0});
    hpl_result =
        launcher.run(4, [&](mpi::Comm& w) { hpl_run = hpl::run_skt_hpl(w, config); });
  });

  std::thread jacobi_job([&] {
    // The storm: rank 1's node dies inside the async flush of its second
    // commit. Only THIS tenant may restart.
    sim::FailureInjector injector;
    injector.add_rule(
        {.point = "ckpt.async_mid_flush", .world_rank = 1, .hit = 2, .repeat = false});
    mpi::JobLauncher launcher(cluster, &injector, {.max_restarts = 2, .first_node = 4});
    jacobi_result = launcher.run(4, [&](mpi::Comm& w) {
      pattern_app(w, service, "jacobi-b", 8192, iterations, ckpt::CommitMode::kAsync, 19,
                  jacobi_restores);
    });
  });

  std::thread accel_job([&] {
    mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 0, .first_node = 8});
    accel_result = launcher.run(
        2, [&](mpi::Comm& w) { accel_app(w, service, "accel-c", 16384, iterations); });
  });

  hpl_job.join();
  jacobi_job.join();
  accel_job.join();

  // ------------------------------------------------------- validation --
  bool ok = true;
  const auto require = [&ok](bool condition, const char* what) {
    if (!condition) {
      std::printf("FAIL: %s\n", what);
      ok = false;
    }
  };
  require(hpl_result.success, "hpl-a did not finish");
  require(jacobi_result.success, "jacobi-b did not finish");
  require(accel_result.success, "accel-c did not finish");
  require(hpl_result.restarts == 0, "hpl-a restarted without being killed");
  require(accel_result.restarts == 0, "accel-c restarted without being killed");
  require(jacobi_result.restarts == 1, "jacobi-b must restart exactly once");
  require(jacobi_restores.load() >= 1, "jacobi-b never restored its epoch");
  require(bystander_restores.load() == 0, "bystander-d restored unexpectedly");
  require(hpl_run.hpl.residual.pass, "hpl-a residual check failed");

  std::size_t bystander_segments_after = 0;
  const std::uint64_t bystander_after =
      owner_digest(cluster, ckpt::StoreService::namespace_prefix("bystander-d"),
                   &bystander_segments_after);
  require(bystander_segments > 0, "bystander-d left no stripes to witness");
  require(bystander_segments_after == bystander_segments &&
              bystander_after == bystander_before,
          "bystander-d's stripes changed across the other tenants' storm");

  // The over-quota probe: admission must reject BEFORE any allocation.
  std::atomic<bool> probe_rejected{false};
  {
    mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 0, .first_node = 10});
    const auto result = launcher.run(2, [&](mpi::Comm& w) {
      ckpt::Session session = ckpt::SessionBuilder{}
                                  .strategy(ckpt::Strategy::kSelf)
                                  .key_prefix("probe")
                                  .data_bytes(1u << 20)
                                  .service(&service)
                                  .tenant("probe-e")
                                  .build(w);
      try {
        (void)session.open();
      } catch (const ckpt::QuotaExceeded&) {
        probe_rejected = true;  // both rank threads throw and store true
      }
    });
    require(result.success, "probe job crashed instead of rejecting cleanly");
  }
  require(probe_rejected.load(), "over-quota probe was admitted");
  std::size_t probe_segments = 0;
  (void)owner_digest(cluster, ckpt::StoreService::namespace_prefix("probe-e"),
                     &probe_segments);
  require(probe_segments == 0, "rejected probe still allocated segments");

  service.publish_gauges();
  const double fairness = service.fairness_ratio();
  require(fairness >= 0.5, "fair-share dispatch spread fell below 0.5");
  for (const char* name : {"hpl-a", "jacobi-b", "accel-c"}) {
    const ckpt::TenantStats stats = service.tenant_stats(name);
    require(stats.commits > 0, "an active tenant recorded no commits");
    require(stats.open_sessions == 0, "a finished tenant still holds sessions");
  }
  require(service.bytes_in_use() == 0, "leases were not released at teardown");

  if (!telemetry_prefix.empty()) {
    telemetry::RunReport report("multi_tenant");
    report.set("iterations", static_cast<std::int64_t>(iterations));
    report.set("hpl_restarts", static_cast<std::int64_t>(hpl_result.restarts));
    report.set("jacobi_restarts", static_cast<std::int64_t>(jacobi_result.restarts));
    report.set("accel_restarts", static_cast<std::int64_t>(accel_result.restarts));
    report.set("jacobi_restores", static_cast<std::int64_t>(jacobi_restores.load()));
    report.set("bystander_bit_identical", bystander_after == bystander_before);
    report.set("probe_rejected", probe_rejected.load());
    report.set("fairness_ratio", fairness);
    report.set("ok", ok);
    const std::string report_path = telemetry_prefix + "_report.json";
    if (!report.write(report_path)) {
      std::printf("could not write %s\n", report_path.c_str());
      ok = false;
    }
  }

  std::printf("\n=== multi-tenant checkpoint store ===\n");
  util::Table table({"tenant", "commits", "windows", "committed", "gate wait", "busy",
                     "restarts", "throughput"});
  const auto row = [&](const char* name, int restarts) {
    const ckpt::TenantStats stats = service.tenant_stats(name);
    table.add_row({name, std::to_string(stats.commits), std::to_string(stats.windows),
                   util::format_bytes(stats.committed_bytes),
                   util::format_seconds(stats.gate_wait_s),
                   util::format_seconds(stats.busy_s), std::to_string(restarts),
                   util::format("{:.1f} MB/s", stats.throughput_Bps / 1e6)});
  };
  row("hpl-a", hpl_result.restarts);
  row("jacobi-b", jacobi_result.restarts);
  row("accel-c", accel_result.restarts);
  row("bystander-d", 0);
  table.print();
  std::printf("fairness ratio: %.2f   bystander stripes: %s   over-quota probe: %s\n",
              fairness, bystander_after == bystander_before ? "bit-identical" : "CHANGED",
              probe_rejected.load() ? "rejected loudly" : "ADMITTED");
  std::printf("%s\n", ok ? "all multi-tenant invariants hold" : "INVARIANT VIOLATIONS");
  return ok ? 0 : 1;
}
