// Shared probe used by the strategy-comparison example: runs one small
// checkpointed workload per strategy, measures commit cost and footprint,
// then injects a failure inside the commit window and reports whether the
// strategy recovered.
#pragma once

#include <cstddef>

#include "ckpt/session.hpp"
#include "mpi/launcher.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"
#include "util/rng.hpp"

namespace skt::examples {

struct StrategyProbe {
  std::size_t memory_bytes = 0;  ///< protocol footprint per process
  double commit_s = 0.0;         ///< one commit (encode + flush + device)
  bool survives_update_failure = false;
};

inline StrategyProbe probe_strategy(ckpt::Strategy strategy, int ranks, int group_size,
                                    std::size_t data_bytes) {
  StrategyProbe probe;
  storage::SnapshotVault vault;

  const auto app = [&](mpi::Comm& world, bool* done) {
    ckpt::Session session = ckpt::SessionBuilder{}
                                .strategy(strategy)
                                .key_prefix("probe")
                                .data_bytes(data_bytes)
                                .group_size(group_size)
                                .vault(&vault)
                                .device(storage::ssd_profile())
                                .build(world);
    const bool restored = session.open() == ckpt::OpenOutcome::kRestored;
    auto* iter = reinterpret_cast<std::uint64_t*>(session.user_state().data());
    if (!restored) {
      *iter = 0;
      for (std::size_t i = 0; i < session.data().size(); ++i) {
        session.data()[i] = static_cast<std::byte>(i);
      }
    }
    while (*iter < 3) {
      *iter += 1;
      const ckpt::CommitStats stats = session.commit();
      if (world.rank() == 0) {
        probe.commit_s = stats.total_s() + stats.device_s;
        probe.memory_bytes = session.memory_bytes();
      }
    }
    if (world.rank() == 0 && done != nullptr) *done = true;
  };

  // Pass 1: fault-free, to measure footprint and commit time.
  {
    sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 0, .nodes_per_rack = 4});
    mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 0});
    (void)launcher.run(ranks, [&](mpi::Comm& w) { app(w, nullptr); });
  }
  // Pass 2: kill a node inside the second commit's update window.
  {
    sim::Cluster cluster({.num_nodes = ranks, .spare_nodes = 2, .nodes_per_rack = 4});
    sim::FailureInjector injector;
    const char* point =
        strategy == ckpt::Strategy::kSelf ? "ckpt.mid_flush" : "ckpt.mid_update";
    injector.add_rule({.point = point, .world_rank = 1, .hit = 2, .repeat = false});
    mpi::JobLauncher launcher(cluster, &injector, {.max_restarts = 2});
    bool done = false;
    const auto result = launcher.run(ranks, [&](mpi::Comm& w) { app(w, &done); });
    probe.survives_update_failure = result.success && done;
  }
  return probe;
}

}  // namespace skt::examples
