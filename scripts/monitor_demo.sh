#!/usr/bin/env bash
# Live-monitoring demo: run the fault-tolerant Jacobi example with the
# health monitor armed and one injected mid-commit node kill, then render
# what the monitoring stack captured. Writes (by default, override the
# directory with $1):
#   out/monitor/POSTMORTEM_ft_jacobi.json  the forensics record — lost
#                                          rank/epoch, rebuilt stripes and
#                                          donor peers, Fig. 10 timeline,
#                                          measured detection latency
#   out/monitor/demo_feed.jsonl            the aggregator's JSON-lines
#                                          feed of rates/EWMAs/anomalies
#   out/monitor/demo_report.json           the matching RunReport
#   out/monitor/demo_trace.json            the span timeline (perfetto)
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-out/monitor}"
mkdir -p "$outdir"
bindir="$PWD/build/examples"

cmake -B build -S . >/dev/null
cmake --build build -j --target ft_jacobi

# Run from the output directory so POSTMORTEM_ft_jacobi.json lands there.
(cd "$outdir" && "$bindir/ft_jacobi" --grid 128 --ranks 4 --iters 60 \
  --ckpt-every 10 --monitor demo)

echo
if command -v jq >/dev/null; then
  echo "=== postmortem: ${outdir}/POSTMORTEM_ft_jacobi.json ==="
  jq '{reason, lost_ranks, lost_epoch, restored_epoch, recovered,
       detect_latency_s, timeline,
       rebuilds: [.rebuilds[] | {rank, epoch, stripes, peers}]}' \
    "$outdir/POSTMORTEM_ft_jacobi.json"
  echo
  echo "=== monitor feed: ${outdir}/demo_feed.jsonl (last 5 ticks) ==="
  tail -n 5 "$outdir/demo_feed.jsonl" | jq -c \
    '{tick, commit_hz, wire_mb_s: (.wire_bytes_per_s / 1048576),
      dirty_fraction, max_phi, anomalies}'
else
  echo "postmortem written: ${outdir}/POSTMORTEM_ft_jacobi.json"
  echo "monitor feed:       ${outdir}/demo_feed.jsonl"
  echo "(install jq for a rendered summary)"
fi
echo
echo "trace written: ${outdir}/demo_trace.json (load it in https://ui.perfetto.dev)"
echo "report written: ${outdir}/demo_report.json"
