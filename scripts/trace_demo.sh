#!/usr/bin/env bash
# Produce a sample Chrome trace from the fault-tolerant Jacobi demo with
# one injected mid-commit node kill, ready to open in chrome://tracing or
# https://ui.perfetto.dev. Writes (by default, override with $1):
#   out/trace_demo_trace.json    the span timeline, including the
#                                "fail:ckpt.mid_flush" instant, the
#                                launcher recovery cycle, and the restore
#   out/trace_demo_report.json   the matching RunReport
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-out/trace_demo}"
mkdir -p "$(dirname "$prefix")"

cmake -B build -S . >/dev/null
cmake --build build -j --target ft_jacobi

build/examples/ft_jacobi --grid 128 --ranks 4 --iters 60 --ckpt-every 10 \
  --telemetry "$prefix"

echo
echo "trace written: ${prefix}_trace.json (load it in https://ui.perfetto.dev)"
echo "report written: ${prefix}_report.json"
