#!/usr/bin/env bash
# Tier-1 check: the normal build + full ctest, then a -DSKT_SIMD=OFF lane
# (the scalar kernel paths must be a complete, bit-identical implementation,
# not a vestige), an ASan/UBSan build (SKT_SANITIZE=ON) running the mpi and
# encoding suites — the code that moves buffers between threads by move,
# reinterprets byte spans as uint64/double lanes, and issues unaligned
# vector loads — a TSan pass over the async pipeline and monitor, a
# monitor lane that schema-validates the postmortem a real injected kill
# produces and gates monitoring overhead, a multi-tenant lane running the
# shared StoreService scenario under TSan and schema-checking its store.*
# gauges, a vault lane running the sharded durable tier under both
# sanitizers plus a live reshard drill with its bandwidth-scaling gate,
# and finally a bench regression gate against the committed
# micro_encoding baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier 1: build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo
echo "=== scalar lane: -DSKT_SIMD=OFF build, kernel + protocol suites ==="
# The SIMD tier must be droppable at configure time with zero behaviour
# change: the kernels' scalar paths and the runtime dispatcher carry the
# same contracts, so the full kernel/codec/protocol suites run against a
# build where AVX2 code does not even exist.
cmake -B build-scalar -S . -DSKT_SIMD=OFF >/dev/null
cmake --build build-scalar -j --target \
  test_kernels test_encoding test_protocols test_incremental
(cd build-scalar && ctest --output-on-failure \
  -R '^(test_kernels|test_encoding|test_protocols|test_incremental)$' -j)

echo
echo "=== sanitizers: asan+ubsan on mpi/encoding suites ==="
# test_kernels rides along for UBSan in particular: the vector kernels take
# arbitrarily misaligned spans and the property tests feed them offset
# slices, so any alignment-assuming load is caught here.
cmake -B build-asan -S . -DSKT_SANITIZE=ON >/dev/null
cmake --build build-asan -j --target \
  test_mailbox test_comm test_collectives test_comm_properties test_encoding test_kernels
(cd build-asan && ctest --output-on-failure \
  -R '^(test_mailbox|test_comm|test_collectives|test_comm_properties|test_encoding|test_kernels)$' -j)

echo
echo "=== sanitizers: tsan on telemetry + async-commit suites ==="
# Rank threads record into the shared registry/tracer concurrently while
# tests snapshot them, and the Session async pipeline overlaps the rank
# thread (mutating data(), staging) with the per-process commit worker
# (encoding the staged copy) — exactly the interleavings TSan exists to
# check. test_session's SessionAsyncStress is the dedicated workload.
cmake -B build-tsan -S . -DSKT_SANITIZE_THREAD=ON >/dev/null
# test_encoding (the RS(k, m) ring collectives run one thread per member)
# and test_scrubber (cadence thread vs. rank thread vs. async worker over
# the commit-exclusion mutex) ride the same lane.
cmake --build build-tsan -j --target \
  test_telemetry test_util test_session test_monitor test_encoding test_scrubber
(cd build-tsan && ctest --output-on-failure \
  -R '^(test_telemetry|test_util|test_session|test_monitor|test_encoding|test_scrubber)$' -j)

echo
echo "=== monitor lane: ft_jacobi --monitor forensics + overhead gate ==="
# The full observability loop under a real injected kill: heartbeats feed
# the launcher's detect phase, the aggregator streams the JSONL feed, and
# the forensics collector assembles POSTMORTEM_ft_jacobi.json. The example
# validates the live invariants itself (measured detection latency,
# aggregator ticks, feed on disk); jq then schema-checks the postmortem
# the way an external pipeline would consume it. monitor_overhead holds
# the instrumentation to <= 2% of an encode-like work unit.
cmake --build build -j --target ft_jacobi monitor_overhead
rm -rf build/monitor-lane && mkdir -p build/monitor-lane
(cd build/monitor-lane && ../examples/ft_jacobi --grid 128 --ranks 4 \
  --iters 60 --ckpt-every 10 --monitor lane >/dev/null)
pm=build/monitor-lane/POSTMORTEM_ft_jacobi.json
jq -e '(.schema == "skt-postmortem-v1" or .schema == "skt-postmortem-v2")
       and (.lost_ranks | length > 0)
       and .recovered
       and (.restored_epoch >= 1)
       and (.rebuilds | length > 0)
       and (.rebuilds[0].stripes.count > 0)
       and (.rebuilds[0].peers | length > 0)
       and (.timeline | map(.phase) | index("detect") != null)
       and (.detect_latency_s >= 0)' "$pm" >/dev/null \
  && echo "[PASS] $pm matches the skt-postmortem schema" \
  || { echo "[FAIL] $pm failed schema validation"; exit 1; }
jq -es 'length > 0' build/monitor-lane/lane_feed.jsonl >/dev/null \
  && echo "[PASS] monitor feed is well-formed JSONL" \
  || { echo "[FAIL] monitor feed is missing or malformed"; exit 1; }
(cd build && ./bench/monitor_overhead)

echo
echo "=== scrub lane: ft_jacobi --scrub --bitflip repair-under-load + overhead gate ==="
# Silent-data-corruption drill on a live RS(2, 2) job: a bit flip lands in
# a sealed checksum buffer after the first commit, the background scrubber
# must repair it from the mirror while the sweep loop keeps running, and
# the faulty pass (node kill + restore) must still converge bit-identically.
# ft_jacobi validates the counters itself; jq re-checks the RunReport the
# way an external pipeline would. micro_scrub holds the scrub duty cycle
# and the per-commit exclusion handshake to <= 3% of an encode-like pass.
cmake --build build -j --target ft_jacobi micro_scrub
rm -rf build/scrub-lane && mkdir -p build/scrub-lane
(cd build/scrub-lane && ../examples/ft_jacobi --grid 128 --ranks 4 \
  --iters 60 --ckpt-every 10 --scrub 0.001 --parity 2 --bitflip \
  --telemetry lane >/dev/null)
sr=build/scrub-lane/lane_report.json
jq -e '(.values.scrub_passes > 0)
       and (.values.scrub_corruption_detected > 0)
       and (.values.scrub_repaired > 0)
       and (.values.scrub_unrepaired == 0)
       and .values.identical' "$sr" >/dev/null \
  && echo "[PASS] $sr shows the flip detected, repaired, and a bit-identical result" \
  || { echo "[FAIL] $sr lacks the scrub-and-repair evidence"; exit 1; }
(cd build && ./bench/micro_scrub)

echo
echo "=== multi-tenant lane: StoreService under TSan + store.* gauge schema ==="
# Four tenants' rank threads, their async commit workers, and an over-
# quota probe all hammer one StoreService (admission queue, whole-job
# leases, fair-share turnstile) while a failpoint kills one tenant's node
# — exactly the interleavings TSan exists to check. The example validates
# the isolation/quota/recovery/fairness invariants itself and exits
# nonzero; jq then checks the RunReport carries the per-tenant store.*
# picture the way an external operator would consume it.
cmake --build build-tsan -j --target multi_tenant
rm -rf build/mt-lane && mkdir -p build/mt-lane
(cd build/mt-lane && ../../build-tsan/examples/multi_tenant --iters 6 \
  --monitor lane >/dev/null)
mt=build/mt-lane/lane_report.json
jq -e '(.metrics.gauges."store.capacity_bytes" > 0)
       and (.metrics.gauges."store.bytes_in_use" == 0)
       and (.metrics.gauges."store.tenants" == 5)
       and (.metrics.gauges."store.fairness_ratio" >= 0.5)
       and (.metrics.gauges."store.tenant.hpl-a.commits" > 0)
       and (.metrics.gauges."store.tenant.jacobi-b.commits" > 0)
       and (.metrics.gauges."store.tenant.accel-c.commits" > 0)
       and (.metrics.gauges."store.tenant.jacobi-b.committed_bytes" > 0)
       and (.metrics.gauges."store.tenant.probe-e.commits" == 0)
       and (.values.jacobi_restarts == 1)
       and (.values.hpl_restarts == 0)
       and .values.bystander_bit_identical
       and .values.probe_rejected
       and .values.ok' "$mt" >/dev/null \
  && echo "[PASS] $mt carries the per-tenant store.* gauges and invariants" \
  || { echo "[FAIL] $mt lacks the multi-tenant evidence"; exit 1; }

echo
echo "=== vault lane: sharded tier under sanitizers + live reshard drill ==="
# The sharded vault moves extents between shards while rank threads flush
# and the launcher reshards — pointer/lock discipline worth both
# sanitizers. Then a real drill: ft_jacobi stripes its L2 images over 4
# shards, an injected kill takes a shard-hosting node down, and the
# replace phase must re-home the dead shard's extents onto the
# substitute with nothing lost and the run still bit-identical. jq
# checks the RunReport's vault.* gauges (including the replica
# invariant: physical bytes == 2x logical) the way an external operator
# would. vault_bandwidth holds the modeled flush scaling to >= 2x at 4
# shards vs 1.
cmake --build build-asan -j --target test_storage test_sharded_vault
(cd build-asan && ctest --output-on-failure \
  -R '^(test_storage|test_sharded_vault)$' -j)
cmake --build build-tsan -j --target test_storage test_sharded_vault
(cd build-tsan && ctest --output-on-failure \
  -R '^(test_storage|test_sharded_vault)$' -j)
cmake --build build -j --target ft_jacobi vault_bandwidth
rm -rf build/vault-lane && mkdir -p build/vault-lane
(cd build/vault-lane && ../examples/ft_jacobi --grid 128 --ranks 4 \
  --iters 60 --ckpt-every 10 --shards 4 --telemetry lane >/dev/null)
vr=build/vault-lane/lane_report.json
jq -e '(.metrics.gauges."vault.shards" == 4)
       and (.metrics.gauges."vault.rebalances" >= 1)
       and (.metrics.gauges."vault.extents_rehomed" > 0)
       and (.metrics.gauges."vault.bytes.physical"
            == 2 * .metrics.gauges."vault.bytes.logical")
       and (.values.vault_extents_lost == 0)
       and .values.identical' "$vr" >/dev/null \
  && echo "[PASS] $vr shows the reshard served the restore with nothing lost" \
  || { echo "[FAIL] $vr lacks the sharded-vault evidence"; exit 1; }
(cd build && ./bench/vault_bandwidth)

echo
echo "=== bench regression gate: micro_encoding vs committed baseline ==="
# Two tiers of gate, matched to how reproducible each metric is. Wire and
# mailbox-copy byte counts are exact functions of the algorithms — any
# growth past 10% of the committed baseline is a real regression. Wall
# -clock speedups wobble with machine load, so they only have to stay
# above half the committed value; the bench's own internal bars (encode
# >= 2x sequential, GF(256) SIMD >= 3x scalar, bit-identical outputs)
# already run first and fail the script on their own.
cmake --build build -j --target micro_encoding
(cd build && ./bench/micro_encoding >/dev/null)
baseline=bench/BENCH_micro_encoding.baseline.json
current=build/out/BENCH_micro_encoding.json
jval() { awk -F: -v k="\"$2\"" '$1 ~ k {gsub(/[ ,]/, "", $2); print $2; exit}' "$1"; }
for k in encode_g4_new_wire_bytes encode_g8_new_wire_bytes encode_g16_new_wire_bytes \
         encode_g4_new_copied_bytes encode_g8_new_copied_bytes encode_g16_new_copied_bytes; do
  awk -v c="$(jval "$current" "$k")" -v b="$(jval "$baseline" "$k")" -v k="$k" 'BEGIN {
    ok = (c <= 1.10 * b)
    printf "[%s] %s: %s vs baseline %s (must stay within +10%%)\n", ok ? "PASS" : "FAIL", k, c, b
    exit ok ? 0 : 1
  }'
done
for k in encode_g4_speedup encode_g8_speedup encode_g16_speedup \
         gf256_simd_speedup accumulate_speedup; do
  awk -v c="$(jval "$current" "$k")" -v b="$(jval "$baseline" "$k")" -v k="$k" 'BEGIN {
    ok = (c >= 0.5 * b)
    printf "[%s] %s: %.2fx vs baseline %.2fx (must keep half)\n", ok ? "PASS" : "FAIL", k, c, b
    exit ok ? 0 : 1
  }'
done

echo
echo "all checks passed"
