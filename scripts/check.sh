#!/usr/bin/env bash
# Tier-1 check: the normal build + full ctest, then an ASan/UBSan build
# (SKT_SANITIZE=ON) running the mpi and encoding suites — the code that
# moves buffers between threads by move and reinterprets byte spans as
# uint64/double lanes, i.e. where a sanitizer earns its keep.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier 1: build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo
echo "=== sanitizers: asan+ubsan on mpi/encoding suites ==="
cmake -B build-asan -S . -DSKT_SANITIZE=ON >/dev/null
cmake --build build-asan -j --target \
  test_mailbox test_comm test_collectives test_comm_properties test_encoding
(cd build-asan && ctest --output-on-failure \
  -R '^(test_mailbox|test_comm|test_collectives|test_comm_properties|test_encoding)$' -j)

echo
echo "=== sanitizers: tsan on telemetry + async-commit suites ==="
# Rank threads record into the shared registry/tracer concurrently while
# tests snapshot them, and the Session async pipeline overlaps the rank
# thread (mutating data(), staging) with the per-process commit worker
# (encoding the staged copy) — exactly the interleavings TSan exists to
# check. test_session's SessionAsyncStress is the dedicated workload.
cmake -B build-tsan -S . -DSKT_SANITIZE_THREAD=ON >/dev/null
cmake --build build-tsan -j --target test_telemetry test_util test_session
(cd build-tsan && ctest --output-on-failure -R '^(test_telemetry|test_util|test_session)$' -j)

echo
echo "all checks passed"
