file(REMOVE_RECURSE
  "CMakeFiles/ft_hpl.dir/ft_hpl.cpp.o"
  "CMakeFiles/ft_hpl.dir/ft_hpl.cpp.o.d"
  "ft_hpl"
  "ft_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
