# Empty compiler generated dependencies file for ft_hpl.
# This may be replaced when dependencies are built.
