file(REMOVE_RECURSE
  "CMakeFiles/ft_jacobi.dir/ft_jacobi.cpp.o"
  "CMakeFiles/ft_jacobi.dir/ft_jacobi.cpp.o.d"
  "ft_jacobi"
  "ft_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
