# Empty compiler generated dependencies file for ft_jacobi.
# This may be replaced when dependencies are built.
