file(REMOVE_RECURSE
  "CMakeFiles/ft_accelerator.dir/ft_accelerator.cpp.o"
  "CMakeFiles/ft_accelerator.dir/ft_accelerator.cpp.o.d"
  "ft_accelerator"
  "ft_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
