# Empty dependencies file for ft_accelerator.
# This may be replaced when dependencies are built.
