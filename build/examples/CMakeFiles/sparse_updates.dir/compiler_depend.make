# Empty compiler generated dependencies file for sparse_updates.
# This may be replaced when dependencies are built.
