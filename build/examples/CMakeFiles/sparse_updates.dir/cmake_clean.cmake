file(REMOVE_RECURSE
  "CMakeFiles/sparse_updates.dir/sparse_updates.cpp.o"
  "CMakeFiles/sparse_updates.dir/sparse_updates.cpp.o.d"
  "sparse_updates"
  "sparse_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
