file(REMOVE_RECURSE
  "libskt_encoding.a"
)
