# Empty dependencies file for skt_encoding.
# This may be replaced when dependencies are built.
