
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/codec.cpp" "src/encoding/CMakeFiles/skt_encoding.dir/codec.cpp.o" "gcc" "src/encoding/CMakeFiles/skt_encoding.dir/codec.cpp.o.d"
  "/root/repo/src/encoding/dual_parity.cpp" "src/encoding/CMakeFiles/skt_encoding.dir/dual_parity.cpp.o" "gcc" "src/encoding/CMakeFiles/skt_encoding.dir/dual_parity.cpp.o.d"
  "/root/repo/src/encoding/gf256.cpp" "src/encoding/CMakeFiles/skt_encoding.dir/gf256.cpp.o" "gcc" "src/encoding/CMakeFiles/skt_encoding.dir/gf256.cpp.o.d"
  "/root/repo/src/encoding/group_codec.cpp" "src/encoding/CMakeFiles/skt_encoding.dir/group_codec.cpp.o" "gcc" "src/encoding/CMakeFiles/skt_encoding.dir/group_codec.cpp.o.d"
  "/root/repo/src/encoding/reed_solomon.cpp" "src/encoding/CMakeFiles/skt_encoding.dir/reed_solomon.cpp.o" "gcc" "src/encoding/CMakeFiles/skt_encoding.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/skt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/skt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
