file(REMOVE_RECURSE
  "CMakeFiles/skt_encoding.dir/codec.cpp.o"
  "CMakeFiles/skt_encoding.dir/codec.cpp.o.d"
  "CMakeFiles/skt_encoding.dir/dual_parity.cpp.o"
  "CMakeFiles/skt_encoding.dir/dual_parity.cpp.o.d"
  "CMakeFiles/skt_encoding.dir/gf256.cpp.o"
  "CMakeFiles/skt_encoding.dir/gf256.cpp.o.d"
  "CMakeFiles/skt_encoding.dir/group_codec.cpp.o"
  "CMakeFiles/skt_encoding.dir/group_codec.cpp.o.d"
  "CMakeFiles/skt_encoding.dir/reed_solomon.cpp.o"
  "CMakeFiles/skt_encoding.dir/reed_solomon.cpp.o.d"
  "libskt_encoding.a"
  "libskt_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skt_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
