file(REMOVE_RECURSE
  "CMakeFiles/skt_util.dir/clock.cpp.o"
  "CMakeFiles/skt_util.dir/clock.cpp.o.d"
  "CMakeFiles/skt_util.dir/format.cpp.o"
  "CMakeFiles/skt_util.dir/format.cpp.o.d"
  "CMakeFiles/skt_util.dir/log.cpp.o"
  "CMakeFiles/skt_util.dir/log.cpp.o.d"
  "CMakeFiles/skt_util.dir/options.cpp.o"
  "CMakeFiles/skt_util.dir/options.cpp.o.d"
  "CMakeFiles/skt_util.dir/stats.cpp.o"
  "CMakeFiles/skt_util.dir/stats.cpp.o.d"
  "CMakeFiles/skt_util.dir/table.cpp.o"
  "CMakeFiles/skt_util.dir/table.cpp.o.d"
  "libskt_util.a"
  "libskt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
