# Empty compiler generated dependencies file for skt_util.
# This may be replaced when dependencies are built.
