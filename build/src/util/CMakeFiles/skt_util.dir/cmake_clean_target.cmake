file(REMOVE_RECURSE
  "libskt_util.a"
)
