file(REMOVE_RECURSE
  "CMakeFiles/skt_storage.dir/device.cpp.o"
  "CMakeFiles/skt_storage.dir/device.cpp.o.d"
  "CMakeFiles/skt_storage.dir/snapshot_vault.cpp.o"
  "CMakeFiles/skt_storage.dir/snapshot_vault.cpp.o.d"
  "libskt_storage.a"
  "libskt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
