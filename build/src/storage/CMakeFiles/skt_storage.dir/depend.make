# Empty dependencies file for skt_storage.
# This may be replaced when dependencies are built.
