file(REMOVE_RECURSE
  "libskt_storage.a"
)
