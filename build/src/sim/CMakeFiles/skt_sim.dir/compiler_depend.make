# Empty compiler generated dependencies file for skt_sim.
# This may be replaced when dependencies are built.
