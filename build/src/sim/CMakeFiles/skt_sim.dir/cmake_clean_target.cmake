file(REMOVE_RECURSE
  "libskt_sim.a"
)
