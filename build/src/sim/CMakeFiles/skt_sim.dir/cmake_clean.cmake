file(REMOVE_RECURSE
  "CMakeFiles/skt_sim.dir/cluster.cpp.o"
  "CMakeFiles/skt_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/skt_sim.dir/failure.cpp.o"
  "CMakeFiles/skt_sim.dir/failure.cpp.o.d"
  "CMakeFiles/skt_sim.dir/persistent_store.cpp.o"
  "CMakeFiles/skt_sim.dir/persistent_store.cpp.o.d"
  "libskt_sim.a"
  "libskt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
