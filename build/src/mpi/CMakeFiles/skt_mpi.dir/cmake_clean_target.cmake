file(REMOVE_RECURSE
  "libskt_mpi.a"
)
