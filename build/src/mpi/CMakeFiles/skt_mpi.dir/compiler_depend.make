# Empty compiler generated dependencies file for skt_mpi.
# This may be replaced when dependencies are built.
