file(REMOVE_RECURSE
  "CMakeFiles/skt_mpi.dir/comm.cpp.o"
  "CMakeFiles/skt_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/skt_mpi.dir/launcher.cpp.o"
  "CMakeFiles/skt_mpi.dir/launcher.cpp.o.d"
  "CMakeFiles/skt_mpi.dir/mailbox.cpp.o"
  "CMakeFiles/skt_mpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/skt_mpi.dir/runtime.cpp.o"
  "CMakeFiles/skt_mpi.dir/runtime.cpp.o.d"
  "libskt_mpi.a"
  "libskt_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skt_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
