file(REMOVE_RECURSE
  "CMakeFiles/skt_model.dir/efficiency.cpp.o"
  "CMakeFiles/skt_model.dir/efficiency.cpp.o.d"
  "CMakeFiles/skt_model.dir/interval.cpp.o"
  "CMakeFiles/skt_model.dir/interval.cpp.o.d"
  "CMakeFiles/skt_model.dir/systems.cpp.o"
  "CMakeFiles/skt_model.dir/systems.cpp.o.d"
  "CMakeFiles/skt_model.dir/top500.cpp.o"
  "CMakeFiles/skt_model.dir/top500.cpp.o.d"
  "libskt_model.a"
  "libskt_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skt_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
