file(REMOVE_RECURSE
  "libskt_model.a"
)
