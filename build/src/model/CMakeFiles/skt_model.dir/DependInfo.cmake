
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/efficiency.cpp" "src/model/CMakeFiles/skt_model.dir/efficiency.cpp.o" "gcc" "src/model/CMakeFiles/skt_model.dir/efficiency.cpp.o.d"
  "/root/repo/src/model/interval.cpp" "src/model/CMakeFiles/skt_model.dir/interval.cpp.o" "gcc" "src/model/CMakeFiles/skt_model.dir/interval.cpp.o.d"
  "/root/repo/src/model/systems.cpp" "src/model/CMakeFiles/skt_model.dir/systems.cpp.o" "gcc" "src/model/CMakeFiles/skt_model.dir/systems.cpp.o.d"
  "/root/repo/src/model/top500.cpp" "src/model/CMakeFiles/skt_model.dir/top500.cpp.o" "gcc" "src/model/CMakeFiles/skt_model.dir/top500.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/skt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/skt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
