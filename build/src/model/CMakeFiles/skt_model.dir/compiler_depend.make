# Empty compiler generated dependencies file for skt_model.
# This may be replaced when dependencies are built.
