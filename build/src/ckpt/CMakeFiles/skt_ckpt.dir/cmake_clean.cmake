file(REMOVE_RECURSE
  "CMakeFiles/skt_ckpt.dir/blcr_checkpoint.cpp.o"
  "CMakeFiles/skt_ckpt.dir/blcr_checkpoint.cpp.o.d"
  "CMakeFiles/skt_ckpt.dir/double_checkpoint.cpp.o"
  "CMakeFiles/skt_ckpt.dir/double_checkpoint.cpp.o.d"
  "CMakeFiles/skt_ckpt.dir/factory.cpp.o"
  "CMakeFiles/skt_ckpt.dir/factory.cpp.o.d"
  "CMakeFiles/skt_ckpt.dir/grouping.cpp.o"
  "CMakeFiles/skt_ckpt.dir/grouping.cpp.o.d"
  "CMakeFiles/skt_ckpt.dir/incremental.cpp.o"
  "CMakeFiles/skt_ckpt.dir/incremental.cpp.o.d"
  "CMakeFiles/skt_ckpt.dir/multilevel.cpp.o"
  "CMakeFiles/skt_ckpt.dir/multilevel.cpp.o.d"
  "CMakeFiles/skt_ckpt.dir/plan.cpp.o"
  "CMakeFiles/skt_ckpt.dir/plan.cpp.o.d"
  "CMakeFiles/skt_ckpt.dir/self_checkpoint.cpp.o"
  "CMakeFiles/skt_ckpt.dir/self_checkpoint.cpp.o.d"
  "CMakeFiles/skt_ckpt.dir/single_checkpoint.cpp.o"
  "CMakeFiles/skt_ckpt.dir/single_checkpoint.cpp.o.d"
  "libskt_ckpt.a"
  "libskt_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skt_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
