
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/blcr_checkpoint.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/blcr_checkpoint.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/blcr_checkpoint.cpp.o.d"
  "/root/repo/src/ckpt/double_checkpoint.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/double_checkpoint.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/double_checkpoint.cpp.o.d"
  "/root/repo/src/ckpt/factory.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/factory.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/factory.cpp.o.d"
  "/root/repo/src/ckpt/grouping.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/grouping.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/grouping.cpp.o.d"
  "/root/repo/src/ckpt/incremental.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/incremental.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/incremental.cpp.o.d"
  "/root/repo/src/ckpt/multilevel.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/multilevel.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/multilevel.cpp.o.d"
  "/root/repo/src/ckpt/plan.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/plan.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/plan.cpp.o.d"
  "/root/repo/src/ckpt/self_checkpoint.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/self_checkpoint.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/self_checkpoint.cpp.o.d"
  "/root/repo/src/ckpt/single_checkpoint.cpp" "src/ckpt/CMakeFiles/skt_ckpt.dir/single_checkpoint.cpp.o" "gcc" "src/ckpt/CMakeFiles/skt_ckpt.dir/single_checkpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/encoding/CMakeFiles/skt_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/skt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/skt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
