file(REMOVE_RECURSE
  "libskt_ckpt.a"
)
