# Empty compiler generated dependencies file for skt_ckpt.
# This may be replaced when dependencies are built.
