
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpl/abft.cpp" "src/hpl/CMakeFiles/skt_hpl.dir/abft.cpp.o" "gcc" "src/hpl/CMakeFiles/skt_hpl.dir/abft.cpp.o.d"
  "/root/repo/src/hpl/blas.cpp" "src/hpl/CMakeFiles/skt_hpl.dir/blas.cpp.o" "gcc" "src/hpl/CMakeFiles/skt_hpl.dir/blas.cpp.o.d"
  "/root/repo/src/hpl/driver.cpp" "src/hpl/CMakeFiles/skt_hpl.dir/driver.cpp.o" "gcc" "src/hpl/CMakeFiles/skt_hpl.dir/driver.cpp.o.d"
  "/root/repo/src/hpl/lu.cpp" "src/hpl/CMakeFiles/skt_hpl.dir/lu.cpp.o" "gcc" "src/hpl/CMakeFiles/skt_hpl.dir/lu.cpp.o.d"
  "/root/repo/src/hpl/skt_hpl.cpp" "src/hpl/CMakeFiles/skt_hpl.dir/skt_hpl.cpp.o" "gcc" "src/hpl/CMakeFiles/skt_hpl.dir/skt_hpl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ckpt/CMakeFiles/skt_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/skt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/skt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/skt_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skt_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
