file(REMOVE_RECURSE
  "libskt_hpl.a"
)
