file(REMOVE_RECURSE
  "CMakeFiles/skt_hpl.dir/abft.cpp.o"
  "CMakeFiles/skt_hpl.dir/abft.cpp.o.d"
  "CMakeFiles/skt_hpl.dir/blas.cpp.o"
  "CMakeFiles/skt_hpl.dir/blas.cpp.o.d"
  "CMakeFiles/skt_hpl.dir/driver.cpp.o"
  "CMakeFiles/skt_hpl.dir/driver.cpp.o.d"
  "CMakeFiles/skt_hpl.dir/lu.cpp.o"
  "CMakeFiles/skt_hpl.dir/lu.cpp.o.d"
  "CMakeFiles/skt_hpl.dir/skt_hpl.cpp.o"
  "CMakeFiles/skt_hpl.dir/skt_hpl.cpp.o.d"
  "libskt_hpl.a"
  "libskt_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skt_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
