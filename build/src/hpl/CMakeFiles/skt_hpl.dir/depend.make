# Empty dependencies file for skt_hpl.
# This may be replaced when dependencies are built.
