file(REMOVE_RECURSE
  "CMakeFiles/test_hpl_dist.dir/test_hpl_dist.cpp.o"
  "CMakeFiles/test_hpl_dist.dir/test_hpl_dist.cpp.o.d"
  "test_hpl_dist"
  "test_hpl_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpl_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
