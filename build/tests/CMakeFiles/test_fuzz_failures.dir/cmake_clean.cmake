file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_failures.dir/test_fuzz_failures.cpp.o"
  "CMakeFiles/test_fuzz_failures.dir/test_fuzz_failures.cpp.o.d"
  "test_fuzz_failures"
  "test_fuzz_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
