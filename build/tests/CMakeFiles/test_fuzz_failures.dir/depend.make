# Empty dependencies file for test_fuzz_failures.
# This may be replaced when dependencies are built.
