file(REMOVE_RECURSE
  "CMakeFiles/test_failure_matrix.dir/test_failure_matrix.cpp.o"
  "CMakeFiles/test_failure_matrix.dir/test_failure_matrix.cpp.o.d"
  "test_failure_matrix"
  "test_failure_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
