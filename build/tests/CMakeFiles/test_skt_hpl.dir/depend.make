# Empty dependencies file for test_skt_hpl.
# This may be replaced when dependencies are built.
