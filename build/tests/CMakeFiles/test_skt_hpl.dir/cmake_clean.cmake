file(REMOVE_RECURSE
  "CMakeFiles/test_skt_hpl.dir/test_skt_hpl.cpp.o"
  "CMakeFiles/test_skt_hpl.dir/test_skt_hpl.cpp.o.d"
  "test_skt_hpl"
  "test_skt_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skt_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
