# Empty dependencies file for test_comm_properties.
# This may be replaced when dependencies are built.
