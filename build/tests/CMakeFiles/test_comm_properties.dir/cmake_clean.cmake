file(REMOVE_RECURSE
  "CMakeFiles/test_comm_properties.dir/test_comm_properties.cpp.o"
  "CMakeFiles/test_comm_properties.dir/test_comm_properties.cpp.o.d"
  "test_comm_properties"
  "test_comm_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
