# Empty dependencies file for test_hpl_core.
# This may be replaced when dependencies are built.
