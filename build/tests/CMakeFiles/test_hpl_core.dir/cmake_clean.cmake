file(REMOVE_RECURSE
  "CMakeFiles/test_hpl_core.dir/test_hpl_core.cpp.o"
  "CMakeFiles/test_hpl_core.dir/test_hpl_core.cpp.o.d"
  "test_hpl_core"
  "test_hpl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
