# Empty compiler generated dependencies file for fig12_memory_vs_efficiency.
# This may be replaced when dependencies are built.
