file(REMOVE_RECURSE
  "CMakeFiles/fig12_memory_vs_efficiency.dir/fig12_memory_vs_efficiency.cpp.o"
  "CMakeFiles/fig12_memory_vs_efficiency.dir/fig12_memory_vs_efficiency.cpp.o.d"
  "fig12_memory_vs_efficiency"
  "fig12_memory_vs_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memory_vs_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
