file(REMOVE_RECURSE
  "CMakeFiles/fig07_efficiency_model.dir/fig07_efficiency_model.cpp.o"
  "CMakeFiles/fig07_efficiency_model.dir/fig07_efficiency_model.cpp.o.d"
  "fig07_efficiency_model"
  "fig07_efficiency_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_efficiency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
