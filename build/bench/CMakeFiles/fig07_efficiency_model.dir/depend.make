# Empty dependencies file for fig07_efficiency_model.
# This may be replaced when dependencies are built.
