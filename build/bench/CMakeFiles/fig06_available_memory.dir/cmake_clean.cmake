file(REMOVE_RECURSE
  "CMakeFiles/fig06_available_memory.dir/fig06_available_memory.cpp.o"
  "CMakeFiles/fig06_available_memory.dir/fig06_available_memory.cpp.o.d"
  "fig06_available_memory"
  "fig06_available_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_available_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
