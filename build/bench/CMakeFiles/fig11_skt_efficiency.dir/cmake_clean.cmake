file(REMOVE_RECURSE
  "CMakeFiles/fig11_skt_efficiency.dir/fig11_skt_efficiency.cpp.o"
  "CMakeFiles/fig11_skt_efficiency.dir/fig11_skt_efficiency.cpp.o.d"
  "fig11_skt_efficiency"
  "fig11_skt_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_skt_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
