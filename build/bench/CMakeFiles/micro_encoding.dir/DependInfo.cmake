
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_encoding.cpp" "bench/CMakeFiles/micro_encoding.dir/micro_encoding.cpp.o" "gcc" "bench/CMakeFiles/micro_encoding.dir/micro_encoding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpl/CMakeFiles/skt_hpl.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/skt_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/skt_model.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/skt_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/skt_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/skt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
