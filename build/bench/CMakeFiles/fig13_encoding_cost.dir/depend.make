# Empty dependencies file for fig13_encoding_cost.
# This may be replaced when dependencies are built.
