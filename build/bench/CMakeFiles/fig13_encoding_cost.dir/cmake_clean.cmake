file(REMOVE_RECURSE
  "CMakeFiles/fig13_encoding_cost.dir/fig13_encoding_cost.cpp.o"
  "CMakeFiles/fig13_encoding_cost.dir/fig13_encoding_cost.cpp.o.d"
  "fig13_encoding_cost"
  "fig13_encoding_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_encoding_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
