# Empty compiler generated dependencies file for fig10_restart_cycle.
# This may be replaced when dependencies are built.
