file(REMOVE_RECURSE
  "CMakeFiles/fig10_restart_cycle.dir/fig10_restart_cycle.cpp.o"
  "CMakeFiles/fig10_restart_cycle.dir/fig10_restart_cycle.cpp.o.d"
  "fig10_restart_cycle"
  "fig10_restart_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_restart_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
