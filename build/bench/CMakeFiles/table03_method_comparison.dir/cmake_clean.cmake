file(REMOVE_RECURSE
  "CMakeFiles/table03_method_comparison.dir/table03_method_comparison.cpp.o"
  "CMakeFiles/table03_method_comparison.dir/table03_method_comparison.cpp.o.d"
  "table03_method_comparison"
  "table03_method_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_method_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
