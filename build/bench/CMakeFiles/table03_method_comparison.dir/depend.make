# Empty dependencies file for table03_method_comparison.
# This may be replaced when dependencies are built.
