file(REMOVE_RECURSE
  "CMakeFiles/table01_memory_usage.dir/table01_memory_usage.cpp.o"
  "CMakeFiles/table01_memory_usage.dir/table01_memory_usage.cpp.o.d"
  "table01_memory_usage"
  "table01_memory_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_memory_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
