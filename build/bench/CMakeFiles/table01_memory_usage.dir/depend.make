# Empty dependencies file for table01_memory_usage.
# This may be replaced when dependencies are built.
