file(REMOVE_RECURSE
  "CMakeFiles/fig08_top10_projection.dir/fig08_top10_projection.cpp.o"
  "CMakeFiles/fig08_top10_projection.dir/fig08_top10_projection.cpp.o.d"
  "fig08_top10_projection"
  "fig08_top10_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_top10_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
