# Empty compiler generated dependencies file for fig08_top10_projection.
# This may be replaced when dependencies are built.
