// Monitoring-overhead gate: the live health monitor must be effectively
// free for the code it observes. The instrumented hot path is
// Comm::failpoint — one HealthBoard::heartbeat per call (a steady-clock
// read and a few relaxed atomics when armed; a relaxed load + branch when
// not) — plus the aggregator thread sampling the registry in the
// background. Failpoints ride on commit-scale work (an encode pass over a
// stripe), not on inner loops, so the unit of comparison is: cost of one
// heartbeat + counter bump vs. cost of one encode-like pass over a
// 256 KiB block.
//
// Measurement discipline, because the host is shared and timeshared with
// clock swings larger than the 2% bar: a naive A/B diff of the full loop
// would try to resolve a sub-1% signal under several percent of noise.
// Instead the two costs are measured DIRECTLY and separately —
//
//  * t_work: per-iteration CPU time of the bare XOR-fold loop,
//  * t_instr: per-call CPU time of heartbeat + counter with the board
//    armed and the aggregator thread ticking concurrently,
//
// each as the MIN over several reps of CLOCK_THREAD_CPUTIME_ID (noise
// can only inflate CPU time, so the min observes the intrinsic cost),
// and the gate is t_instr / t_work <= 2%. Because the instrumentation
// cost is the whole measurement rather than the difference of two large
// numbers, clock noise perturbs the ratio proportionally (a few percent
// of a sub-1% value) instead of drowning it. A full monitored-vs-bare
// loop comparison is still run and reported as `e2e_overhead_frac` for
// trending, but it is too noisy on shared hosts to gate on. Results land
// in BENCH_monitor_overhead.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <vector>

#include "telemetry/aggregator.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace skt;

constexpr std::size_t kLanes = 32768;  // 256 KiB of uint64 lanes per work unit
constexpr int kWorkIters = 1000;
constexpr int kInstrIters = 2'000'000;
constexpr int kReps = 7;  ///< min-of per measurement, discards preemptions

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// One rep of the encode-like work loop (optionally instrumented); returns seconds.
double work_rep(std::vector<std::uint64_t>& block, std::uint64_t& sink, bool instrumented) {
  telemetry::Counter& commits = telemetry::metrics().counter("bench.monitor_loop");
  telemetry::HealthBoard& board = telemetry::health();
  const double t0 = thread_cpu_seconds();
  std::uint64_t fold = 0;
  for (int it = 0; it < kWorkIters; ++it) {
    for (std::size_t i = 0; i < kLanes; ++i) fold ^= block[i] + static_cast<std::uint64_t>(it);
    if (instrumented) {
      board.heartbeat(0);  // the per-failpoint cost under measurement
      commits.increment();
    }
  }
  const double s = thread_cpu_seconds() - t0;
  sink ^= fold;
  return s;
}

/// One rep of the bare instrumentation pair; returns seconds for kInstrIters calls.
double instr_rep() {
  telemetry::Counter& commits = telemetry::metrics().counter("bench.monitor_loop");
  telemetry::HealthBoard& board = telemetry::health();
  const double t0 = thread_cpu_seconds();
  for (int it = 0; it < kInstrIters; ++it) {
    board.heartbeat(0);
    commits.increment();
  }
  return thread_cpu_seconds() - t0;
}

template <typename Fn>
double min_of(Fn&& rep) {
  double best = 1e30;
  for (int r = 0; r < kReps; ++r) best = std::min(best, rep());
  return best;
}

bool shape_check(const char* what, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main() {
  std::vector<std::uint64_t> block(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) block[i] = 0x9e3779b97f4a7c15ull * (i + 1);
  std::uint64_t sink = 0;

  // Bare work loop: monitoring fully off (the process default).
  telemetry::set_enabled(false);
  telemetry::health().set_enabled(false);
  const double bare_s = min_of([&] { return work_rep(block, sink, false); });

  // Monitored measurements: board armed, aggregator thread sampling
  // concurrently — exactly what `--monitor` turns on in the examples.
  telemetry::set_enabled(true);
  telemetry::health().reset();
  telemetry::health().set_enabled(true);
  double instr_s = 0.0;
  double monitored_s = 0.0;
  {
    telemetry::AggregatorConfig cfg;
    cfg.stall_phi = 0.0;  // the bench's lone rank idles between reps
    telemetry::Aggregator aggregator(cfg);
    aggregator.start();
    instr_s = min_of([] { return instr_rep(); });
    monitored_s = min_of([&] { return work_rep(block, sink, true); });
    aggregator.stop();
  }
  telemetry::health().set_enabled(false);
  telemetry::set_enabled(false);

  const double t_work = bare_s / kWorkIters;
  const double t_instr = instr_s / kInstrIters;
  const double overhead = t_instr / t_work;
  const double e2e_overhead = monitored_s / bare_s - 1.0;
  std::printf("--- monitor overhead (%zu KiB work unit, min cpu-time of %d reps) ---\n",
              kLanes * sizeof(std::uint64_t) / 1024, kReps);
  std::printf("work unit        %9.3f us/iter (bare encode-like pass)\n", t_work * 1e6);
  std::printf("instrumentation  %9.4f us/call (heartbeat + counter, armed)\n", t_instr * 1e6);
  std::printf("overhead         %+.3f%% per work unit (end-to-end diff %+.2f%%, sink %llx)\n",
              overhead * 100.0, e2e_overhead * 100.0, static_cast<unsigned long long>(sink));

  util::JsonWriter report;
  report.begin_object();
  report.field("work_iters", static_cast<std::int64_t>(kWorkIters));
  report.field("instr_iters", static_cast<std::int64_t>(kInstrIters));
  report.field("block_bytes", static_cast<std::uint64_t>(kLanes * sizeof(std::uint64_t)));
  report.field("reps", static_cast<std::int64_t>(kReps));
  report.field("work_unit_s", t_work);
  report.field("instr_call_s", t_instr);
  report.field("overhead_frac", overhead);
  report.field("e2e_overhead_frac", e2e_overhead);
  report.end_object();
  util::write_json_file(util::report_path("BENCH_monitor_overhead.json"), report);

  return shape_check("monitor-enabled overhead <= 2%", overhead <= 0.02) ? 0 : 1;
}
