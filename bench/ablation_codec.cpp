// Ablation — encoding design choices the paper calls out:
//
//  * XOR vs numeric SUM (Section 2.2: "On some platforms, the logical XOR
//    operation is much faster than the numerical SUM. Our implementation
//    uses XOR by default"): commit cost and recovery exactness.
//  * Single vs dual parity (the RAID-6/Reed-Solomon extension): memory
//    cost and encode cost of tolerating a second failure per group.
#include <cstring>

#include "bench_common.hpp"
#include "ckpt/plan.hpp"
#include "ckpt/session.hpp"

using namespace skt;

namespace {

constexpr int kRanks = 8;
constexpr int kGroup = 8;
constexpr std::size_t kDataBytes = 4u << 20;

/// Deterministic fill; content only needs to be non-trivial, the
/// harness-level tests already verify bit-exact recovery.
void fill_data(std::span<std::byte> data, int rank) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 131 + static_cast<std::size_t>(rank) * 7) & 0xff);
  }
}

struct CodecRun {
  double encode_s = 0.0;        ///< mean wall encode time per commit
  std::size_t memory = 0;       ///< protocol footprint
  std::size_t redundancy = 0;   ///< checksum/parity bytes
  bool recovered = false;       ///< survived a mid-run node loss
};

CodecRun run_variant(enc::CodecKind codec, int parity_degree) {
  CodecRun out;
  const auto body = [&](mpi::Comm& world, bool measure) {
    ckpt::Session session = ckpt::SessionBuilder{}
                                .strategy(ckpt::Strategy::kSelf)
                                .key_prefix("codec")
                                .data_bytes(kDataBytes)
                                .codec(codec)
                                .parity_degree(parity_degree)
                                .build(world);
    const bool restored = session.open() == ckpt::OpenOutcome::kRestored;
    auto* iter = reinterpret_cast<std::uint64_t*>(session.user_state().data());
    if (!restored) {
      *iter = 0;
      fill_data(session.data(), world.rank());
    }
    double total = 0.0;
    int commits = 0;
    std::size_t redundancy = 0;
    while (*iter < 4) {
      world.failpoint("codec.work");
      *iter += 1;
      const ckpt::CommitStats stats = session.commit();
      total += stats.encode_s;
      redundancy = stats.checksum_bytes;
      ++commits;
    }
    if (measure && world.rank() == 0 && commits > 0) {
      out.encode_s = total / commits;
      out.memory = session.memory_bytes();
      out.redundancy = redundancy;
    }
  };

  // Fault-free measurement pass.
  {
    sim::Cluster cluster({.num_nodes = kRanks, .spare_nodes = 0, .nodes_per_rack = 4});
    mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 0});
    (void)launcher.run(kRanks, [&](mpi::Comm& w) { body(w, true); });
  }
  // Recovery pass: one node loss mid-run.
  {
    sim::Cluster cluster({.num_nodes = kRanks, .spare_nodes = 2, .nodes_per_rack = 4});
    sim::FailureInjector injector;
    injector.add_rule({.point = "codec.work", .world_rank = 2, .hit = 3, .repeat = false});
    mpi::JobLauncher launcher(cluster, &injector, {.max_restarts = 2});
    const auto result = launcher.run(kRanks, [&](mpi::Comm& w) { body(w, false); });
    out.recovered = result.success;
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "encoding choices: XOR vs SUM, single vs dual parity");

  const CodecRun xor1 = run_variant(enc::CodecKind::kXor, 1);
  const CodecRun sum1 = run_variant(enc::CodecKind::kSum, 1);
  const CodecRun dual = run_variant(enc::CodecKind::kXor, 2);

  util::Table table({"variant", "available mem", "redundancy/process", "encode time",
                     "failures tolerated/group", "recovers"});
  table.add_row({"XOR, single parity (default)",
                 util::format("{:.1%}", ckpt::available_fraction(ckpt::Strategy::kSelf, kGroup)),
                 util::format_bytes(xor1.redundancy), util::format_seconds(xor1.encode_s),
                 "1", xor1.recovered ? "yes" : "NO"});
  table.add_row({"SUM, single parity",
                 util::format("{:.1%}", ckpt::available_fraction(ckpt::Strategy::kSelf, kGroup)),
                 util::format_bytes(sum1.redundancy), util::format_seconds(sum1.encode_s),
                 "1", sum1.recovered ? "yes" : "NO"});
  table.add_row({"GF(256), dual parity",
                 util::format("{:.1%}", ckpt::available_fraction_dual(kGroup)),
                 util::format_bytes(dual.redundancy), util::format_seconds(dual.encode_s),
                 "2", dual.recovered ? "yes" : "NO"});
  table.print();

  bool ok = true;
  ok &= bench::shape_check("all three variants recover from a node loss",
                           xor1.recovered && sum1.recovered && dual.recovered);
  ok &= bench::shape_check(
      "dual parity stores ~2x the redundancy of single parity",
      dual.redundancy > static_cast<std::size_t>(1.5 * static_cast<double>(xor1.redundancy)) &&
          dual.redundancy < 3 * xor1.redundancy);
  ok &= bench::shape_check(
      "dual parity costs more encode time than single parity (GF multiplies)",
      dual.encode_s > xor1.encode_s);
  ok &= bench::shape_check(
      "dual parity still leaves more memory than double-checkpoint",
      ckpt::available_fraction_dual(kGroup) >
          ckpt::available_fraction(ckpt::Strategy::kDouble, kGroup));
  return ok ? 0 : 1;
}
