// Scrub-overhead gate: the background scrubber must cost the rank it
// protects at most 3% of an encode-like work unit, even at a cadence far
// more aggressive than production (200 us here vs. the 2 ms default). The
// scrubber runs on its own thread, so the cost it can impose on the rank
// is the commit-exclusion handshake: every commit locks the mutex the
// scrub pass re-acquires per chunk, so the worst case a commit can wait is
// one 4 KiB CRC32C — the bound the per-chunk rework in scrubber.cpp
// exists to provide — plus whatever cache pressure the scan leaks.
//
// Measurement discipline (same reasoning as monitor_overhead.cpp): on a
// shared host a full A/B wall-clock diff of the loop cannot resolve a
// sub-1% signal, so the gated quantity is measured DIRECTLY —
//
//  * t_work: per-iteration CPU time of the bare XOR-fold work unit
//    (min over reps of CLOCK_THREAD_CPUTIME_ID),
//  * t_wait: mean wall time a simulated commit spends acquiring the
//    commit-exclusion lock while the cadence thread scans a 2 MiB sealed
//    pair flat out (min over reps — noise only inflates waits),
//
// and the gate is t_wait / (work between commits) <= 3%. The end-to-end
// scrubber-on/off wall ratio is reported as `e2e_overhead_frac` for
// trending only. A detect-and-repair drill (flip one byte of the sealed
// pair, require the very next pass to find and fix it from the twin) runs
// last so the gate can never pass with a scrubber that scans nothing.
// Results land in BENCH_scrub.json.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>
#include <vector>

#include "ckpt/protocol.hpp"
#include "ckpt/scrubber.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace skt;

constexpr std::size_t kLanes = 32768;        ///< 256 KiB of uint64 lanes per work unit
constexpr std::size_t kSealedBytes = 1 << 20;  ///< primary sealed buffer (twin doubles it)
constexpr std::size_t kResealBytes = 1 << 16;  ///< slice rewritten per simulated commit
constexpr int kIters = 400;                  ///< work units per rep
constexpr int kCommitEvery = 25;             ///< work units between simulated commits
constexpr int kReps = 7;                     ///< min-of per measurement
constexpr double kScrubInterval = 200e-6;    ///< aggressive cadence for the bench

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

double wall_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// A minimal CheckpointProtocol exposing one mirrored sealed pair — the
/// shape self-checkpoint's C/D checksum buffers take after a flush — so
/// the scrubber can be driven without a communicator. reseal() plays the
/// role of a commit's flush step: rewrite a slice, refresh the twin, and
/// advance the epoch (invalidating the scrubber's baselines exactly the
/// way a real commit does).
class ScrubTarget final : public ckpt::CheckpointProtocol {
 public:
  ScrubTarget() : primary_(kSealedBytes), twin_(kSealedBytes), user_(64) {
    reseal(0);
    epoch_.store(1, std::memory_order_release);
  }

  bool open(ckpt::CommCtx) override { return false; }
  std::span<std::byte> data() override { return primary_; }
  std::span<std::byte> user_state() override { return user_; }
  ckpt::CommitStats commit(ckpt::CommCtx) override { return {}; }
  ckpt::RestoreStats restore(ckpt::CommCtx) override { return {}; }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return primary_.size() + twin_.size();
  }
  [[nodiscard]] ckpt::Strategy strategy() const override { return ckpt::Strategy::kSelf; }
  [[nodiscard]] std::uint64_t committed_epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }
  std::vector<ckpt::ScrubRegion> scrub_view() override {
    return {{"C", std::span<std::byte>(primary_), std::span<std::byte>(twin_)},
            {"D", std::span<std::byte>(twin_), std::span<std::byte>(primary_)}};
  }

  /// Caller holds the commit-exclusion lock (like a real flush).
  void reseal(std::uint64_t commit_index) {
    const std::size_t offset =
        (static_cast<std::size_t>(commit_index) * kResealBytes) % (kSealedBytes - kResealBytes);
    for (std::size_t i = 0; i < kResealBytes; ++i) {
      primary_[offset + i] =
          static_cast<std::byte>((commit_index * 131 + offset + i) & 0xff);
    }
    std::memcpy(twin_.data() + offset, primary_.data() + offset, kResealBytes);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::vector<std::byte> primary_;
  std::vector<std::byte> twin_;
  std::vector<std::byte> user_;
  std::atomic<std::uint64_t> epoch_{0};
};

/// One encode-like work unit; returns nothing, folds into `sink`.
void work_unit(std::vector<std::uint64_t>& block, int it, std::uint64_t& sink) {
  std::uint64_t fold = 0;
  for (std::size_t i = 0; i < kLanes; ++i) fold ^= block[i] + static_cast<std::uint64_t>(it);
  sink ^= fold;
}

struct RepResult {
  double wall_s = 0.0;       ///< whole driver loop
  double mean_wait_s = 0.0;  ///< mean commit-exclusion acquisition wait
  double max_wait_s = 0.0;   ///< worst single acquisition this rep
};

/// One rep of the driver: kIters work units with a simulated commit
/// (lock exclusion, reseal a slice, bump the epoch) every kCommitEvery.
RepResult driver_rep(std::vector<std::uint64_t>& block, ScrubTarget& target,
                     ckpt::Scrubber& scrubber, std::uint64_t& sink,
                     std::uint64_t& commit_index) {
  RepResult rep;
  double wait_total = 0.0;
  int commits = 0;
  const double t0 = wall_seconds();
  for (int it = 0; it < kIters; ++it) {
    work_unit(block, it, sink);
    if ((it + 1) % kCommitEvery != 0) continue;
    const double w0 = wall_seconds();
    std::unique_lock lock(scrubber.commit_exclusion());
    const double wait = wall_seconds() - w0;
    target.reseal(++commit_index);
    lock.unlock();
    wait_total += wait;
    rep.max_wait_s = std::max(rep.max_wait_s, wait);
    ++commits;
  }
  rep.wall_s = wall_seconds() - t0;
  rep.mean_wait_s = commits > 0 ? wait_total / commits : 0.0;
  return rep;
}

bool shape_check(const char* what, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main() {
  std::vector<std::uint64_t> block(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) block[i] = 0x9e3779b97f4a7c15ull * (i + 1);
  std::uint64_t sink = 0;
  std::uint64_t commit_index = 0;

  ScrubTarget target;
  ckpt::Scrubber::Options options;
  options.interval_s = kScrubInterval;
  ckpt::Scrubber scrubber(target, options);

  // Bare work unit, thread CPU time (the gate's denominator).
  double bare_unit_s = 1e30;
  for (int r = 0; r < kReps; ++r) {
    const double t0 = thread_cpu_seconds();
    for (int it = 0; it < kIters; ++it) work_unit(block, it, sink);
    bare_unit_s = std::min(bare_unit_s, (thread_cpu_seconds() - t0) / kIters);
  }

  // Scrubber OFF: same driver, uncontended exclusion lock.
  double off_wall_s = 1e30;
  for (int r = 0; r < kReps; ++r) {
    const RepResult rep = driver_rep(block, target, scrubber, sink, commit_index);
    off_wall_s = std::min(off_wall_s, rep.wall_s);
  }

  // Scrubber ON at an aggressive cadence: every commit invalidates the
  // baselines mid-pass, so the cadence thread is near-continuously either
  // recapturing or aborting — the worst realistic lock traffic.
  scrubber.start();
  double on_wall_s = 1e30;
  double mean_wait_s = 1e30;
  double max_wait_s = 0.0;
  for (int r = 0; r < kReps; ++r) {
    const RepResult rep = driver_rep(block, target, scrubber, sink, commit_index);
    on_wall_s = std::min(on_wall_s, rep.wall_s);
    mean_wait_s = std::min(mean_wait_s, rep.mean_wait_s);
    max_wait_s = std::max(max_wait_s, rep.max_wait_s);
  }
  scrubber.stop();

  // Detect-and-repair drill: the gate must not be satisfiable by a
  // scrubber that never actually scans. Baseline the current epoch, flip
  // one byte of the sealed primary, and require the very next pass to
  // find it and repair it from the twin.
  scrubber.scrub_now();  // capture baselines for the final epoch
  const std::size_t flip_at = kSealedBytes / 2 + 17;
  std::byte expected{};
  {
    std::lock_guard lock(scrubber.commit_exclusion());
    std::span<std::byte> primary = target.scrub_view()[0].bytes;
    expected = primary[flip_at];
    primary[flip_at] ^= std::byte{0x40};
  }
  const ckpt::ScrubStats drill = scrubber.scrub_now();
  const bool drill_ok = drill.corruption_detected == 1 && drill.repaired == 1 &&
                        drill.unrepaired == 0 &&
                        target.scrub_view()[0].bytes[flip_at] == expected;
  const ckpt::ScrubStats totals = scrubber.stats();

  // Gate: what a commit pays for the handshake, as a fraction of the work
  // it rides on (kCommitEvery work units per commit).
  const double overhead = mean_wait_s / (kCommitEvery * bare_unit_s);
  const double e2e_overhead = on_wall_s / off_wall_s - 1.0;
  std::printf("--- scrub overhead (%zu KiB work unit, %zu KiB sealed pair, min of %d reps) ---\n",
              kLanes * sizeof(std::uint64_t) / 1024, 2 * kSealedBytes / 1024, kReps);
  std::printf("work unit        %9.3f us/iter (bare encode-like pass)\n", bare_unit_s * 1e6);
  std::printf("commit wait      %9.4f us mean, %9.3f us max (scrubber at %.0f us cadence)\n",
              mean_wait_s * 1e6, max_wait_s * 1e6, kScrubInterval * 1e6);
  std::printf("overhead         %+.3f%% per commit interval (end-to-end diff %+.2f%%, sink %llx)\n",
              overhead * 100.0, e2e_overhead * 100.0, static_cast<unsigned long long>(sink));
  std::printf("drill            detected %llu repaired %llu unrepaired %llu (lifetime passes %llu)\n",
              static_cast<unsigned long long>(drill.corruption_detected),
              static_cast<unsigned long long>(drill.repaired),
              static_cast<unsigned long long>(drill.unrepaired),
              static_cast<unsigned long long>(totals.passes));

  util::JsonWriter report;
  report.begin_object();
  report.field("block_bytes", static_cast<std::uint64_t>(kLanes * sizeof(std::uint64_t)));
  report.field("sealed_pair_bytes", static_cast<std::uint64_t>(2 * kSealedBytes));
  report.field("iters", static_cast<std::int64_t>(kIters));
  report.field("commit_every", static_cast<std::int64_t>(kCommitEvery));
  report.field("reps", static_cast<std::int64_t>(kReps));
  report.field("scrub_interval_s", kScrubInterval);
  report.field("work_unit_s", bare_unit_s);
  report.field("mean_commit_wait_s", mean_wait_s);
  report.field("max_commit_wait_s", max_wait_s);
  report.field("overhead_frac", overhead);
  report.field("e2e_overhead_frac", e2e_overhead);
  report.field("scrub_passes", totals.passes);
  report.field("scrub_chunks_verified", totals.chunks_verified);
  report.field("drill_detected", drill.corruption_detected);
  report.field("drill_repaired", drill.repaired);
  report.end_object();
  util::write_json_file(util::report_path("BENCH_scrub.json"), report);

  bool ok = true;
  ok &= shape_check("commit-exclusion overhead <= 3% of a commit interval", overhead <= 0.03);
  ok &= shape_check("injected flip detected and repaired from the twin on the next pass",
                    drill_ok);
  return ok ? 0 : 1;
}
