// Machine-readable bench output: each binary can drop a flat
// BENCH_<name>.json next to its human-readable table so plotting and CI
// scripts don't have to parse stdout.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace skt::bench {

class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, double value) { entries_.emplace_back(key, value); }

  /// Write BENCH_<name>.json in the working directory; returns false (and
  /// prints a warning) on I/O failure so benches can keep going.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.17g%s\n", entries_[i].first.c_str(), entries_[i].second,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries_.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace skt::bench
