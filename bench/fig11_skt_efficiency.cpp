// Figure 11 — efficiency of the original HPL (full memory) vs SKT-HPL
// (roughly half the memory, no checkpoint written) on the two simulated
// systems of Table 2. The paper measures 97.81% of original on Tianhe-1A
// (group 16) and 95.79% on Tianhe-2 (group 8).
#include "bench_common.hpp"
#include "model/systems.hpp"

using namespace skt;

namespace {

struct SystemRun {
  std::string name;
  double original_eff = 0.0;
  double skt_eff = 0.0;
  [[nodiscard]] double relative() const { return skt_eff / original_eff; }
};

SystemRun run_system(const model::SystemProfile& system, int group,
                     std::size_t capacity_per_rank) {
  SystemRun out;
  out.name = std::string(system.name);
  const bench::Geometry geom{4, 4, 32};

  // One rank per simulated node so groups of up to 16 can satisfy the
  // distinct-node constraint; the system's NIC *sharing* (12 vs 24 ranks
  // per port, the Table 2 difference) is carried by profile.ranks_per_port
  // inside the network model.
  bench::ClusterSpec spec;
  spec.ranks = geom.ranks();
  spec.profile = system.node;
  spec.model_network = true;

  // Original HPL: full memory.
  {
    const std::int64_t n = bench::fit_n(geom, capacity_per_rank);
    const auto config = bench::make_config(geom, n, ckpt::Strategy::kNone, group, 0);
    const bench::HplRun run = bench::run_hpl_job_median(spec, config, 3);
    out.original_eff = run.ok ? run.efficiency : 0.0;
  }
  // SKT-HPL: the self-checkpoint memory fraction, no checkpoints written
  // (ckpt_every = 0), exactly the Fig. 11 configuration.
  {
    const double fraction = ckpt::available_fraction(ckpt::Strategy::kSelf, group);
    const std::int64_t n =
        bench::fit_n(geom, static_cast<std::size_t>(capacity_per_rank * fraction));
    const auto config = bench::make_config(geom, n, ckpt::Strategy::kSelf, group, 0);
    const bench::HplRun run = bench::run_hpl_job_median(spec, config, 3);
    out.skt_eff = run.ok ? run.efficiency : 0.0;
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header("Figure 11", "original HPL vs SKT-HPL efficiency on both systems");
  std::printf("calibrated GEMM peak: %.2f GFLOP/s\n\n", bench::peak_gflops());

  // Tianhe-1A: 4 GB/core and one NIC port per 12 ranks -> scaled to
  // 12 MiB/rank; Tianhe-2: 2.67 GB/core, port per 24 ranks -> 8 MiB/rank.
  // Group sizes are the paper's (16 on Tianhe-1A, 8 on Tianhe-2).
  const SystemRun t1 = run_system(bench::bench_system(model::tianhe1a()), 16, 12u << 20);
  const SystemRun t2 = run_system(bench::bench_system(model::tianhe2()), 8, 8u << 20);

  util::Table table({"system", "original HPL eff.", "SKT-HPL eff. (no ckpt)",
                     "SKT / original", "paper"});
  table.add_row({t1.name, util::format("{:.1%}", t1.original_eff),
                 util::format("{:.1%}", t1.skt_eff), util::format("{:.1%}", t1.relative()),
                 "97.81%"});
  table.add_row({t2.name, util::format("{:.1%}", t2.original_eff),
                 util::format("{:.1%}", t2.skt_eff), util::format("{:.1%}", t2.relative()),
                 "95.79%"});
  table.print();

  bool ok = true;
  ok &= bench::shape_check(
      "SKT-HPL reaches > 85% of the original on both systems (paper: 95.8-97.8% "
      "at its far larger problem sizes)",
      t1.relative() > 0.85 && t2.relative() > 0.85);
  ok &= bench::shape_check("memory reduction costs more on Tianhe-2 than Tianhe-1A",
                           t1.relative() >= t2.relative() - 0.02);
  ok &= bench::shape_check("original HPL efficiency is below 100% of peak on both",
                           t1.original_eff < 1.0 && t2.original_eff < 1.0);
  return ok ? 0 : 1;
}
