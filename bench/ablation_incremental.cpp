// Ablation — incremental vs full self-checkpoint, reproducing the paper's
// Section 1/7 argument: "HPL has a big memory footprint. Almost every byte
// is modified between two checkpoints. As a result, incremental checkpoint
// methods are not efficient for this problem."
//
// Two workloads over the same protected buffer:
//  * full-footprint (HPL-like): every byte rewritten between commits —
//    incremental degenerates to the full protocol;
//  * sparse (5% of stripes dirtied per interval) — incremental commits
//    shrink proportionally.
#include <cstring>

#include "bench_common.hpp"
#include "ckpt/incremental.hpp"
#include "ckpt/self_checkpoint.hpp"

using namespace skt;

namespace {

constexpr int kRanks = 8;
constexpr std::size_t kDataBytes = 8u << 20;
constexpr int kCommits = 5;

struct Run {
  double commit_s = 0.0;          ///< mean commit time
  std::size_t flushed_bytes = 0;  ///< bytes copied into B per commit
};

/// dirty_fraction: portion of the buffer rewritten (and marked) between
/// commits; 1.0 rewrites everything.
Run run_incremental(double dirty_fraction) {
  Run out;
  bench::ClusterSpec spec;
  spec.ranks = kRanks;
  spec.spares = 0;
  (void)bench::run_job(spec, [&](mpi::Comm& world) {
    ckpt::IncrementalSelfCheckpoint proto({.key_prefix = "inc", .data_bytes = kDataBytes});
    ckpt::CommCtx ctx{world, world};
    proto.open(ctx);
    std::memset(proto.data().data(), 0x42, proto.data().size());
    proto.commit(ctx);  // baseline full commit excluded from the means

    const auto window = static_cast<std::size_t>(
        static_cast<double>(kDataBytes) * dirty_fraction);
    double total = 0.0;
    std::size_t flushed = 0;
    for (int i = 0; i < kCommits; ++i) {
      const std::size_t offset =
          window >= kDataBytes ? 0 : (static_cast<std::size_t>(i) * 977 * 4096) % (kDataBytes - window);
      std::memset(proto.data().data() + offset, 0x50 + i, window);
      proto.mark_dirty(offset, window);
      const ckpt::CommitStats stats = proto.commit(ctx);
      total += stats.total_s();
      flushed += stats.checkpoint_bytes;
    }
    if (world.rank() == 0) {
      out.commit_s = total / kCommits;
      out.flushed_bytes = flushed / kCommits;
    }
  });
  return out;
}

Run run_full() {
  Run out;
  bench::ClusterSpec spec;
  spec.ranks = kRanks;
  spec.spares = 0;
  (void)bench::run_job(spec, [&](mpi::Comm& world) {
    ckpt::SelfCheckpoint proto({.key_prefix = "ful", .data_bytes = kDataBytes});
    ckpt::CommCtx ctx{world, world};
    proto.open(ctx);
    std::memset(proto.data().data(), 0x42, proto.data().size());
    proto.commit(ctx);
    double total = 0.0;
    std::size_t flushed = 0;
    for (int i = 0; i < kCommits; ++i) {
      std::memset(proto.data().data(), 0x50 + i, proto.data().size());
      const ckpt::CommitStats stats = proto.commit(ctx);
      total += stats.total_s();
      flushed += stats.checkpoint_bytes;
    }
    if (world.rank() == 0) {
      out.commit_s = total / kCommits;
      out.flushed_bytes = flushed / kCommits;
    }
  });
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "incremental vs full self-checkpoint (the Section 7 argument)");

  const Run full = run_full();
  const Run incr_hpl = run_incremental(1.0);    // HPL-like footprint
  const Run incr_sparse = run_incremental(0.05);  // sparse-update app

  util::Table table({"variant", "workload dirty fraction", "flushed bytes/commit",
                     "commit time"});
  table.add_row({"full self-checkpoint", "100%", util::format_bytes(full.flushed_bytes),
                 util::format_seconds(full.commit_s)});
  table.add_row({"incremental", "100% (HPL-like)",
                 util::format_bytes(incr_hpl.flushed_bytes),
                 util::format_seconds(incr_hpl.commit_s)});
  table.add_row({"incremental", "5% (sparse app)",
                 util::format_bytes(incr_sparse.flushed_bytes),
                 util::format_seconds(incr_sparse.commit_s)});
  table.print();

  bool ok = true;
  ok &= bench::shape_check(
      "with HPL's full footprint, incremental flushes everything anyway (paper's point)",
      incr_hpl.flushed_bytes > (kDataBytes * 9) / 10);
  // Dirty tracking works at stripe granularity (1/(N-1) of the buffer per
  // stripe, ~14% here), so a 5% window plus the always-dirty user-state
  // tail costs 2-3 stripes.
  ok &= bench::shape_check(
      "with sparse updates, incremental flushes < 50% of the buffer (2-3 of 7 stripes)",
      incr_sparse.flushed_bytes < kDataBytes / 2);
  ok &= bench::shape_check(
      "sparse incremental commits are at least 2x cheaper than full commits",
      incr_sparse.commit_s * 2.0 < full.commit_s);
  return ok ? 0 : 1;
}
