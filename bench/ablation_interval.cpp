// Ablation — checkpoint-interval choice. The paper checkpoints "per 10
// minutes" against daily-failure systems (Blue Waters/Titan are cited as
// failing every day); this bench grounds that choice: it measures the
// REAL self-checkpoint commit cost on the simulated machine, feeds it into
// Young/Daly, and validates the optimum with the seeded discrete-event
// simulator.
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/self_checkpoint.hpp"
#include "model/interval.hpp"

using namespace skt;

namespace {

/// Measure one real self-checkpoint commit (8 ranks, 4 MiB/process).
double measure_commit_cost() {
  double cost = 0.0;
  bench::ClusterSpec spec;
  spec.ranks = 8;
  spec.spares = 0;
  (void)bench::run_job(spec, [&](mpi::Comm& world) {
    ckpt::SelfCheckpoint proto({.key_prefix = "intv", .data_bytes = 4u << 20});
    ckpt::CommCtx ctx{world, world};
    proto.open(ctx);
    std::memset(proto.data().data(), 0x77, proto.data().size());
    proto.commit(ctx);  // warm-up
    double total = 0.0;
    for (int i = 0; i < 3; ++i) total += proto.commit(ctx).total_s();
    if (world.rank() == 0) cost = total / 3.0;
  });
  return cost;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "checkpoint interval: Young/Daly vs simulation");

  const double c = measure_commit_cost();
  // A paper-scale scenario: the commit cost scales with memory/bandwidth;
  // the paper measured 16 s per checkpoint at 24,576 ranks. Use both.
  struct Scenario {
    const char* name;
    double ckpt_s;
    double restart_s;
    double mtbf_s;
    double work_s;
  };
  const std::vector<Scenario> scenarios{
      {"this machine (measured commit)", c, 10 * c, 1800.0, 4 * 3600.0},
      {"paper scale (16 s ckpt, daily failures)", 16.0, 102.0, 86400.0, 24 * 3600.0},
  };

  bool ok = true;
  for (const Scenario& s : scenarios) {
    const double young = model::young_interval(s.ckpt_s, s.mtbf_s);
    const double daly = model::daly_interval(s.ckpt_s, s.mtbf_s);
    const double numeric =
        model::optimal_interval_numeric(s.work_s, s.ckpt_s, s.restart_s, s.mtbf_s);

    std::printf("\nscenario: %s  (C=%s, R=%s, MTBF=%s)\n", s.name,
                util::format_seconds(s.ckpt_s).c_str(),
                util::format_seconds(s.restart_s).c_str(),
                util::format_seconds(s.mtbf_s).c_str());
    util::Table table({"interval", "expected runtime (Daly)", "simulated mean (200 trials)"});
    double best_sim = 1e300;
    double best_sim_tau = 0.0;
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double tau = daly * factor;
      const double analytic =
          model::expected_runtime(s.work_s, tau, s.ckpt_s, s.restart_s, s.mtbf_s);
      const double sim =
          model::simulate_mean(s.work_s, tau, s.ckpt_s, s.restart_s, s.mtbf_s, 200);
      if (sim < best_sim) {
        best_sim = sim;
        best_sim_tau = tau;
      }
      table.add_row({util::format_seconds(tau) + (factor == 1.0 ? "  (Daly)" : ""),
                     util::format_seconds(analytic), util::format_seconds(sim)});
    }
    table.print();
    std::printf("Young: %s   Daly: %s   numeric optimum: %s\n",
                util::format_seconds(young).c_str(), util::format_seconds(daly).c_str(),
                util::format_seconds(numeric).c_str());

    ok &= bench::shape_check("numeric optimum within 25% of Daly's closed form",
                             std::abs(numeric - daly) < 0.25 * daly + s.ckpt_s);
    ok &= bench::shape_check(
        "simulation picks an interval within 4x of Daly's (U-shaped curve)",
        best_sim_tau > daly / 4.0 && best_sim_tau < daly * 4.0);
  }

  // The paper's choice in Table 3: checkpoint every 10 minutes on a local
  // cluster whose checkpoints cost ~6 s — close to Young's optimum for an
  // MTBF of roughly half a day.
  const double implied_mtbf = 600.0 * 600.0 / (2.0 * 6.21);
  std::printf("\nthe paper's 10-min interval with its 6.21 s SKT checkpoint is Young-optimal "
              "for MTBF ~ %s — a plausible stress-test assumption.\n",
              util::format_seconds(implied_mtbf).c_str());
  return ok ? 0 : 1;
}
