// Commit cost vs dirty fraction, for every strategy, sync and async: the
// measurement behind the dirty-stripe staging work. Each configuration
// opens an 8-rank session, performs one full warm-up commit, then times
// commits whose application writes (and annotations, through
// Session::mark_dirty) cover a suffix of the working buffer:
//
//   f = 0    — no writes, no annotation: the un-annotated tracker falls
//              back to all-dirty, so this row documents the SAFETY cost,
//              not a fast path (except incremental, whose contract is
//              "unmarked means clean" — its f=0 commit is near-free).
//   f = 1%, 10%, 50%, 100% — annotated prefix writes.
//
// Sync rows cost a commit the way the repo's Table-3 benches do: wall
// time for the local memory work (the dirty-stripe flush copy) plus the
// VIRTUAL clock's modeled network/device time for the encode collective
// and any vault write (100 Gb/s NIC, 5 us latency). Wall-clocking the
// whole commit() here would measure this 1-core host's rank-thread
// scheduling — every mailbox round costs ~ms regardless of payload — and
// bury the byte scaling the bench exists to show. Async rows time the
// critical-path part of commit_async — the dirty-stripe stage copy, a
// purely local operation — after draining the previous epoch, so the
// number is what the application loop actually pays.
//
// Results land in BENCH_staging.json; the shape checks assert the
// acceptance bar: a 10%-dirty commit costs <= 30% of a 100%-dirty one for
// the self, double, and multi-level strategies, in both modes. BLCR is
// reported but unchecked — its full-image vault write is the strategy's
// defining cost and does not scale with dirty bytes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "ckpt/session.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"
#include "util/clock.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace {

using namespace skt;

// Group of 8 -> 7 data stripes per member, so a 10% prefix stays well
// under the codec's half-dirty fallback threshold (2 of 8 families) and
// the delta path is actually exercised; 8 MiB/rank keeps the commit work
// large against the ~ms barrier/scheduling noise of timeshared rank
// threads.
constexpr int kRanks = 8;
constexpr std::size_t kDataBytes = 8 << 20;  // per rank
constexpr int kReps = 7;

struct StagingConfig {
  ckpt::Strategy strategy = ckpt::Strategy::kSelf;
  const char* name = "self";
  int level2_every = 0;   ///< > 0: multi-level wrapper, flushing every N
  bool needs_vault = false;
};

/// Best-of-kReps critical-path commit seconds (max across ranks) at the
/// given dirty fraction.
double measure_commit(const StagingConfig& cfg, double frac, bool async) {
  sim::NodeProfile profile;
  profile.nic_bandwidth_Bps = 12.5e9;  // 100 Gb/s
  profile.nic_latency_s = 5.0e-6;
  profile.ranks_per_port = 1;
  sim::Cluster cluster(
      {.num_nodes = kRanks, .spare_nodes = 0, .nodes_per_rack = 4, .profile = profile});
  std::vector<int> ranklist(kRanks);
  std::iota(ranklist.begin(), ranklist.end(), 0);
  storage::SnapshotVault vault;
  mpi::Runtime rt(cluster, ranklist, nullptr, {.model_network = true});
  const mpi::JobResult result = rt.run([&](mpi::Comm& world) {
    ckpt::Session session =
        ckpt::SessionBuilder{}
            .strategy(cfg.strategy)
            .group_size(kRanks)
            .data_bytes(kDataBytes)
            .user_bytes(64)
            .key_prefix("stagebench")
            .vault(cfg.needs_vault || cfg.level2_every > 0 ? &vault : nullptr)
            .device(storage::ssd_profile())
            .mode(async ? ckpt::CommitMode::kAsync : ckpt::CommitMode::kSync)
            .level2_flush_every(cfg.level2_every)
            .build(world);
    session.open();

    util::Xoshiro256 rng(11 + static_cast<std::uint64_t>(world.rank()));
    // Hot region = a SUFFIX of the buffer: the user-state tail is rewritten
    // (and its covering stripe marked) on every commit as a protocol
    // invariant, and that stripe is the last one — a hot suffix shares it,
    // while a hot prefix would add two extra parity families at every
    // fraction and mask the delta path this bench measures.
    const auto scribble = [&](std::size_t bytes) {
      std::span<std::byte> data = session.data().subspan(kDataBytes - bytes, bytes);
      for (std::size_t i = 0; i + 8 <= data.size(); i += 64) {
        const std::uint64_t v = rng.next();
        std::memcpy(data.data() + i, &v, 8);
      }
    };

    // Warm-up: one full, annotated commit so every clean-stripe invariant
    // (B == app, image mirrors, parity) is established before timing.
    scribble(kDataBytes);
    session.mark_all_dirty();
    session.commit();

    const std::size_t hot =
        frac <= 0.0 ? 0
                    : std::max<std::size_t>(1, static_cast<std::size_t>(
                                                   static_cast<double>(kDataBytes) * frac));
    double best = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
      if (hot != 0) {
        scribble(hot);
        session.mark_dirty(kDataBytes - hot, hot);
      }
      if (async) session.drain();  // charge only THIS epoch's critical path
      util::WallTimer t;
      double cost;
      if (async) {
        // Async critical path: what the application loop blocks on — the
        // dirty-stripe stage copy plus the worker hand-off.
        session.commit_async();
        cost = t.seconds();
      } else {
        // Sync cost: local copy wall time + modeled wire/device time (see
        // the header). stats.encode_s — the collective's wall clock — is
        // excluded: on this timeshared host it is ~ms of thread scheduling
        // per message round, independent of payload bytes.
        const ckpt::CommitStats stats = session.commit();
        cost = stats.flush_s + stats.encode_virtual_s + stats.device_s;
        world.record_time("encode_max", stats.encode_s);
        world.record_time("encode_virtual_max", stats.encode_virtual_s);
        world.record_time("flush_max", stats.flush_s);
        world.record_time("wire_mb", static_cast<double>(stats.encode_wire_bytes) / 1e6);
        world.record_time("dirty_frac", stats.dirty_fraction);
      }
      best = std::min(best, cost);
    }
    if (async) session.drain();
    world.record_time("commit_best", best);
  });
  if (!async && std::getenv("SKT_STAGING_DEBUG") != nullptr) {
    std::printf("\n    [dbg %s f=%.2f] encode=%.3fms virt=%.3fms flush=%.3fms wire=%.2fMB df=%.2f\n",
                cfg.name, frac, result.times.at("encode_max") * 1e3,
                result.times.at("encode_virtual_max") * 1e3,
                result.times.at("flush_max") * 1e3, result.times.at("wire_mb"),
                result.times.at("dirty_frac"));
  }
  return result.times.at("commit_best");
}

bool shape_check(const std::string& what, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok;
}

}  // namespace

int main() {
  const StagingConfig configs[] = {
      {ckpt::Strategy::kSelf, "self", 0, false},
      {ckpt::Strategy::kSelfIncremental, "incr", 0, false},
      {ckpt::Strategy::kDouble, "double", 0, false},
      {ckpt::Strategy::kSingle, "single", 0, false},
      {ckpt::Strategy::kBlcr, "blcr", 0, true},
      // Multi-level with a cadence past the measured reps: the rows time
      // the level-1 delta commits, not the periodic full disk flush.
      {ckpt::Strategy::kSelf, "multilevel", 64, false},
  };
  const double fracs[] = {0.0, 0.01, 0.10, 0.50, 1.0};
  const char* frac_tag[] = {"f0", "f1", "f10", "f50", "f100"};

  util::JsonWriter report;
  report.begin_object();
  report.field("data_bytes", static_cast<std::uint64_t>(kDataBytes));
  report.field("ranks", static_cast<std::int64_t>(kRanks));

  bool ok = true;
  std::printf("--- commit critical path vs dirty fraction (%d ranks, %zu MiB/rank) ---\n",
              kRanks, kDataBytes >> 20);
  for (const bool async : {false, true}) {
    for (const StagingConfig& cfg : configs) {
      const char* mode = async ? "async" : "sync";
      double at[5] = {};
      std::printf("%-10s %-5s", cfg.name, mode);
      for (int i = 0; i < 5; ++i) {
        at[i] = measure_commit(cfg, fracs[i], async);
        std::printf("  %s=%8.3fms", frac_tag[i], at[i] * 1e3);
        report.field(std::string(cfg.name) + "_" + mode + "_" + frac_tag[i] + "_commit_s",
                     at[i]);
      }
      const double ratio = at[4] > 0.0 ? at[2] / at[4] : 1.0;
      std::printf("  (10%%/100%% = %.2f)\n", ratio);
      report.field(std::string(cfg.name) + "_" + mode + "_ratio_10_100", ratio);

      const bool gated = std::string(cfg.name) == "self" ||
                         std::string(cfg.name) == "double" ||
                         std::string(cfg.name) == "multilevel";
      if (gated) {
        ok &= shape_check(std::string(cfg.name) + " " + mode +
                              ": 10%-dirty commit <= 30% of 100%-dirty",
                          ratio <= 0.30);
      }
    }
  }
  report.end_object();
  util::write_json_file(util::report_path("BENCH_staging.json"), report);
  return ok ? 0 : 1;
}
