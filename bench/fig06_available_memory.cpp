// Figure 6 — available application memory (%) for single-, self- and
// double-checkpoint at group sizes {2, 3, 4, 8, 16, 32}, from the paper's
// closed forms (Eqs. 2-4) and cross-checked against planner output.
#include "bench_common.hpp"
#include "ckpt/plan.hpp"

using namespace skt;

int main() {
  bench::print_header("Figure 6", "available memory vs group size per strategy");

  util::Table table({"group size", "single-checkpoint", "self-checkpoint",
                     "double-checkpoint"});
  bool ordering_ok = true;
  for (const int n : {2, 3, 4, 8, 16, 32}) {
    const double single = ckpt::available_fraction(ckpt::Strategy::kSingle, n);
    const double self = ckpt::available_fraction(ckpt::Strategy::kSelf, n);
    const double dbl = ckpt::available_fraction(ckpt::Strategy::kDouble, n);
    ordering_ok &= single > self && self > dbl;
    table.add_row({std::to_string(n), util::format("{:.1%}", single),
                   util::format("{:.1%}", self), util::format("{:.1%}", dbl)});
  }
  table.print();

  // Planner cross-check at a concrete capacity.
  const std::size_t capacity = 64ull << 20;
  bool planner_ok = true;
  for (const int n : {2, 3, 4, 8, 16, 32}) {
    for (const auto s :
         {ckpt::Strategy::kSingle, ckpt::Strategy::kSelf, ckpt::Strategy::kDouble}) {
      const ckpt::MemoryPlan plan = ckpt::plan_memory(s, capacity, n);
      planner_ok &= plan.total_bytes() <= capacity;
      planner_ok &= std::abs(plan.fraction() - ckpt::available_fraction(s, n)) < 1e-6;
    }
  }

  bool ok = true;
  ok &= bench::shape_check("single > self > double at every group size", ordering_ok);
  ok &= bench::shape_check("planner allocations realize the closed forms within budget",
                           planner_ok);
  ok &= bench::shape_check(
      "self-checkpoint at N=16 frees 47% (the paper's configuration)",
      std::abs(ckpt::available_fraction(ckpt::Strategy::kSelf, 16) - 0.469) < 0.005);
  ok &= bench::shape_check(
      "self approaches the 50% bound from below as N grows",
      ckpt::available_fraction(ckpt::Strategy::kSelf, 1024) > 0.499 &&
          ckpt::available_fraction(ckpt::Strategy::kSelf, 1024) < 0.5);
  ok &= bench::shape_check(
      "double-checkpoint stays below 1/3",
      ckpt::available_fraction(ckpt::Strategy::kDouble, 1024) < 1.0 / 3.0);
  return ok ? 0 : 1;
}
