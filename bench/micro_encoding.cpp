// Microbenchmarks (google-benchmark) for the encoding substrate: XOR and
// SUM lane accumulation, GF(2^8) multiply-accumulate, Reed-Solomon encode
// and reconstruct, and the checkpoint flush memcpy.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "encoding/codec.hpp"
#include "encoding/gf256.hpp"
#include "encoding/reed_solomon.hpp"
#include "util/rng.hpp"

namespace {

using namespace skt;

std::vector<std::byte> random_buffer(std::size_t size, std::uint64_t seed) {
  std::vector<std::byte> buf(size);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i + 8 <= size; i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(buf.data() + i, &v, 8);
  }
  return buf;
}

void BM_XorAccumulate(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  auto acc = random_buffer(size, 1);
  const auto in = random_buffer(size, 2);
  for (auto _ : state) {
    enc::accumulate(enc::CodecKind::kXor, acc, in);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_XorAccumulate)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_SumAccumulate(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<double> accv(size / 8, 1.5);
  std::vector<double> inv(size / 8, 0.25);
  auto acc = std::as_writable_bytes(std::span<double>(accv));
  const auto in = std::as_bytes(std::span<const double>(inv));
  for (auto _ : state) {
    enc::accumulate(enc::CodecKind::kSum, acc, in);
    benchmark::DoNotOptimize(accv.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_SumAccumulate)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_Gf256MulAcc(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> out(size, 3);
  std::vector<std::uint8_t> in(size, 7);
  for (auto _ : state) {
    enc::gf256::mul_acc(out, in, 0x1d);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Gf256MulAcc)->Arg(4 << 10)->Arg(256 << 10);

void BM_ReedSolomonEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const std::size_t shard = 64 << 10;
  const enc::ReedSolomon rs(k, m);
  std::vector<std::vector<std::uint8_t>> data(static_cast<std::size_t>(k));
  std::vector<std::vector<std::uint8_t>> parity(static_cast<std::size_t>(m));
  std::vector<std::span<const std::uint8_t>> dv;
  std::vector<std::span<std::uint8_t>> pv;
  for (auto& d : data) {
    d.assign(shard, 0x5c);
    dv.emplace_back(d);
  }
  for (auto& p : parity) {
    p.assign(shard, 0);
    pv.emplace_back(p);
  }
  for (auto _ : state) {
    rs.encode(dv, pv);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shard) * k);
}
BENCHMARK(BM_ReedSolomonEncode)->Args({4, 2})->Args({8, 2})->Args({15, 3});

void BM_ReedSolomonReconstruct(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const std::size_t shard = 64 << 10;
  const enc::ReedSolomon rs(k, m);
  std::vector<std::vector<std::uint8_t>> shards(static_cast<std::size_t>(k + m));
  std::vector<std::span<const std::uint8_t>> dv;
  std::vector<std::span<std::uint8_t>> pv;
  for (int i = 0; i < k; ++i) {
    shards[static_cast<std::size_t>(i)].assign(shard, static_cast<std::uint8_t>(i + 1));
    dv.emplace_back(shards[static_cast<std::size_t>(i)]);
  }
  for (int j = 0; j < m; ++j) {
    shards[static_cast<std::size_t>(k + j)].assign(shard, 0);
    pv.emplace_back(shards[static_cast<std::size_t>(k + j)]);
  }
  rs.encode(dv, pv);
  const auto golden = shards;
  std::vector<bool> present(static_cast<std::size_t>(k + m), true);
  present[0] = false;
  present[1] = false;
  for (auto _ : state) {
    auto work = golden;
    std::vector<std::span<std::uint8_t>> views;
    for (auto& s : work) views.emplace_back(s);
    benchmark::DoNotOptimize(rs.reconstruct(views, present));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shard) * 2);
}
BENCHMARK(BM_ReedSolomonReconstruct)->Args({8, 2})->Args({15, 3});

void BM_CheckpointFlushMemcpy(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto src = random_buffer(size, 5);
  std::vector<std::byte> dst(size);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), size);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_CheckpointFlushMemcpy)->Arg(1 << 20)->Arg(16 << 20);

}  // namespace

BENCHMARK_MAIN();
