// Microbenchmarks (google-benchmark) for the encoding substrate: XOR and
// SUM lane accumulation, GF(2^8) multiply-accumulate, Reed-Solomon encode
// and reconstruct, and the checkpoint flush memcpy.
//
// After the registered benchmarks, main() runs the old-vs-new encode
// comparison — GroupCodec::encode (one ring reduce-scatter) against
// encode_reference (N sequential binomial reduces) — across group sizes
// {4, 8, 16}, prints PASS/FAIL shape checks, and drops the numbers into
// BENCH_micro_encoding.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "encoding/codec.hpp"
#include "encoding/gf256.hpp"
#include "encoding/group_codec.hpp"
#include "encoding/kernels.hpp"
#include "encoding/reed_solomon.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"
#include "util/clock.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace {

using namespace skt;

// The pre-vectorization accumulate: one memcpy-load / op / memcpy-store
// round trip per lane. Kept as the measured baseline for the kernels in
// encoding/codec.cpp.
void scalar_xor_accumulate(std::span<std::byte> acc, std::span<const std::byte> in) {
  for (std::size_t i = 0; i + 8 <= acc.size(); i += 8) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, acc.data() + i, 8);
    std::memcpy(&b, in.data() + i, 8);
    a ^= b;
    std::memcpy(acc.data() + i, &a, 8);
    benchmark::DoNotOptimize(a);
  }
}

std::vector<std::byte> random_buffer(std::size_t size, std::uint64_t seed) {
  std::vector<std::byte> buf(size);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i + 8 <= size; i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(buf.data() + i, &v, 8);
  }
  return buf;
}

void BM_XorAccumulate(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  auto acc = random_buffer(size, 1);
  const auto in = random_buffer(size, 2);
  for (auto _ : state) {
    enc::accumulate(enc::CodecKind::kXor, acc, in);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_XorAccumulate)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_XorAccumulateScalarBaseline(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  auto acc = random_buffer(size, 1);
  const auto in = random_buffer(size, 2);
  for (auto _ : state) {
    scalar_xor_accumulate(acc, in);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_XorAccumulateScalarBaseline)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_SumAccumulate(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<double> accv(size / 8, 1.5);
  std::vector<double> inv(size / 8, 0.25);
  auto acc = std::as_writable_bytes(std::span<double>(accv));
  const auto in = std::as_bytes(std::span<const double>(inv));
  for (auto _ : state) {
    enc::accumulate(enc::CodecKind::kSum, acc, in);
    benchmark::DoNotOptimize(accv.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_SumAccumulate)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_Gf256MulAcc(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> out(size, 3);
  std::vector<std::uint8_t> in(size, 7);
  for (auto _ : state) {
    enc::gf256::mul_acc(out, in, 0x1d);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Gf256MulAcc)->Arg(4 << 10)->Arg(256 << 10);

void BM_ReedSolomonEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const std::size_t shard = 64 << 10;
  const enc::ReedSolomon rs(k, m);
  std::vector<std::vector<std::uint8_t>> data(static_cast<std::size_t>(k));
  std::vector<std::vector<std::uint8_t>> parity(static_cast<std::size_t>(m));
  std::vector<std::span<const std::uint8_t>> dv;
  std::vector<std::span<std::uint8_t>> pv;
  for (auto& d : data) {
    d.assign(shard, 0x5c);
    dv.emplace_back(d);
  }
  for (auto& p : parity) {
    p.assign(shard, 0);
    pv.emplace_back(p);
  }
  for (auto _ : state) {
    rs.encode(dv, pv);
    benchmark::DoNotOptimize(parity[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shard) * k);
}
BENCHMARK(BM_ReedSolomonEncode)->Args({4, 2})->Args({8, 2})->Args({15, 3});

void BM_ReedSolomonReconstruct(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const std::size_t shard = 64 << 10;
  const enc::ReedSolomon rs(k, m);
  std::vector<std::vector<std::uint8_t>> shards(static_cast<std::size_t>(k + m));
  std::vector<std::span<const std::uint8_t>> dv;
  std::vector<std::span<std::uint8_t>> pv;
  for (int i = 0; i < k; ++i) {
    shards[static_cast<std::size_t>(i)].assign(shard, static_cast<std::uint8_t>(i + 1));
    dv.emplace_back(shards[static_cast<std::size_t>(i)]);
  }
  for (int j = 0; j < m; ++j) {
    shards[static_cast<std::size_t>(k + j)].assign(shard, 0);
    pv.emplace_back(shards[static_cast<std::size_t>(k + j)]);
  }
  rs.encode(dv, pv);
  const auto golden = shards;
  std::vector<bool> present(static_cast<std::size_t>(k + m), true);
  present[0] = false;
  present[1] = false;
  for (auto _ : state) {
    auto work = golden;
    std::vector<std::span<std::uint8_t>> views;
    for (auto& s : work) views.emplace_back(s);
    benchmark::DoNotOptimize(rs.reconstruct(views, present));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shard) * 2);
}
BENCHMARK(BM_ReedSolomonReconstruct)->Args({8, 2})->Args({15, 3});

void BM_CheckpointFlushMemcpy(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto src = random_buffer(size, 5);
  std::vector<std::byte> dst(size);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), size);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_CheckpointFlushMemcpy)->Arg(1 << 20)->Arg(16 << 20);

// --- old-vs-new encode comparison ------------------------------------------

struct EncodeMeasure {
  double wall_s = 0.0;            ///< per-encode wall time, max across ranks
  std::uint64_t wire_bytes = 0;   ///< per-encode payload bytes on the wire
  std::uint64_t copied_bytes = 0; ///< per-encode mailbox copy bytes
};

EncodeMeasure measure_encode(int ranks, std::size_t data_bytes, int reps, bool reference) {
  sim::Cluster cluster(
      {.num_nodes = ranks, .spare_nodes = 0, .nodes_per_rack = 4, .profile = {}});
  std::vector<int> ranklist(static_cast<std::size_t>(ranks));
  std::iota(ranklist.begin(), ranklist.end(), 0);
  mpi::Runtime rt(cluster, ranklist);
  const mpi::JobResult result = rt.run([&](mpi::Comm& world) {
    const enc::GroupCodec codec(enc::CodecKind::kXor, data_bytes, world.size());
    std::vector<std::byte> data(codec.padded_bytes(), std::byte(world.rank() + 1));
    std::vector<std::byte> checksum(codec.checksum_bytes());
    world.barrier();
    util::WallTimer timer;
    for (int i = 0; i < reps; ++i) {
      if (reference) {
        codec.encode_reference(world, data, checksum);
      } else {
        codec.encode(world, data, checksum);
      }
    }
    world.record_time("encode", timer.seconds());
  });
  EncodeMeasure m;
  const auto r = static_cast<std::uint64_t>(reps);
  m.wall_s = result.times.at("encode") / reps;
  m.wire_bytes = result.wire_bytes / r;  // barrier tokens are noise (bytes)
  m.copied_bytes = result.copied_bytes / r;
  return m;
}

/// Best-of-3 on wall time (threaded wall clocks are noisy on a shared
/// host); the byte counters are deterministic and identical across runs.
EncodeMeasure measure_encode_best(int ranks, std::size_t data_bytes, int reps,
                                  bool reference) {
  EncodeMeasure best = measure_encode(ranks, data_bytes, reps, reference);
  for (int i = 0; i < 2; ++i) {
    const EncodeMeasure m = measure_encode(ranks, data_bytes, reps, reference);
    if (m.wall_s < best.wall_s) best.wall_s = m.wall_s;
  }
  return best;
}

bool shape_check(const std::string& what, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok;
}

bool run_encode_comparison() {
  std::printf("\n--- GroupCodec encode: reduce-scatter vs N sequential reduces ---\n");
  std::printf("%6s %10s %14s %14s %9s %16s %16s\n", "group", "data", "old wall/op",
              "new wall/op", "speedup", "wire old->new", "copied old->new");

  constexpr std::size_t kDataBytes = 1 << 20;
  constexpr int kReps = 16;
  util::JsonWriter report;
  report.begin_object();
  bool ok = true;
  double speedup_g16 = 0.0;
  for (const int g : {4, 8, 16}) {
    const EncodeMeasure oldm = measure_encode_best(g, kDataBytes, kReps, true);
    const EncodeMeasure newm = measure_encode_best(g, kDataBytes, kReps, false);
    const double speedup = oldm.wall_s / newm.wall_s;
    if (g == 16) speedup_g16 = speedup;
    std::printf("%6d %9zuK %12.3fms %12.3fms %8.2fx %7.2f->%-7.2fMB %7.2f->%-7.2fMB\n", g,
                kDataBytes >> 10, oldm.wall_s * 1e3, newm.wall_s * 1e3, speedup,
                static_cast<double>(oldm.wire_bytes) / 1e6,
                static_cast<double>(newm.wire_bytes) / 1e6,
                static_cast<double>(oldm.copied_bytes) / 1e6,
                static_cast<double>(newm.copied_bytes) / 1e6);
    const std::string tag = "encode_g" + std::to_string(g);
    report.field(tag + "_old_wall_s", oldm.wall_s);
    report.field(tag + "_new_wall_s", newm.wall_s);
    report.field(tag + "_speedup", speedup);
    report.field(tag + "_old_wire_bytes", static_cast<std::uint64_t>(oldm.wire_bytes));
    report.field(tag + "_new_wire_bytes", static_cast<std::uint64_t>(newm.wire_bytes));
    report.field(tag + "_old_copied_bytes", static_cast<std::uint64_t>(oldm.copied_bytes));
    report.field(tag + "_new_copied_bytes", static_cast<std::uint64_t>(newm.copied_bytes));
    ok &= shape_check("group " + std::to_string(g) +
                          ": reduce-scatter encode puts no more bytes on the wire",
                      newm.wire_bytes <= oldm.wire_bytes);
    ok &= shape_check("group " + std::to_string(g) +
                          ": zero-copy path cuts mailbox copy bytes",
                      newm.copied_bytes < oldm.copied_bytes);
  }
  ok &= shape_check("group 16: encode throughput >= 2x the sequential-reduce baseline",
                    speedup_g16 >= 2.0);

  // Scalar-baseline vs block-processed accumulate, measured directly.
  // Both are DRAM-bound at this size, so best-of-5 rounds and a noise
  // margin keep the check meaningful on a shared host.
  {
    constexpr std::size_t kBuf = 4 << 20;
    auto acc = random_buffer(kBuf, 3);
    const auto in = random_buffer(kBuf, 4);
    constexpr int kAccReps = 8;
    const auto best_of = [&](auto fn) {
      fn();  // warm
      double best = 1e30;
      for (int round = 0; round < 5; ++round) {
        util::WallTimer t;
        for (int i = 0; i < kAccReps; ++i) fn();
        best = std::min(best, t.seconds() / kAccReps);
      }
      return best;
    };
    const double scalar_s = best_of([&] { scalar_xor_accumulate(acc, in); });
    const double block_s = best_of([&] { enc::accumulate(enc::CodecKind::kXor, acc, in); });
    const double ratio = scalar_s / block_s;
    std::printf("accumulate 4MiB: scalar %.3fms, block %.3fms (%.2fx)\n", scalar_s * 1e3,
                block_s * 1e3, ratio);
    report.field("accumulate_scalar_s", scalar_s);
    report.field("accumulate_block_s", block_s);
    report.field("accumulate_speedup", ratio);
    ok &= shape_check("block-processed accumulate is no slower than the scalar baseline",
                      block_s <= scalar_s * 1.25);
  }

  // GF(2^8) multiply-accumulate: PSHUFB split-nibble tier vs the log/exp
  // scalar loop, pinned via force_tier so the comparison measures the
  // kernels, not the dispatch. Outputs are asserted bit-identical first —
  // a fast-but-wrong kernel must fail loudly, not report a speedup.
  {
    constexpr std::size_t kBuf = 256 << 10;
    std::vector<std::uint8_t> in(kBuf);
    util::Xoshiro256 rng(9);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> out_scalar(kBuf, 0x3c);
    std::vector<std::uint8_t> out_simd = out_scalar;
    constexpr std::uint8_t kCoeff = 0x1d;

    {
      const enc::kernels::Tier prev = enc::kernels::force_tier(enc::kernels::Tier::kScalar);
      enc::kernels::gf256_mul_acc(out_scalar, in, kCoeff);
      enc::kernels::force_tier(prev);
    }
    {
      const enc::kernels::Tier prev = enc::kernels::force_tier(enc::kernels::Tier::kAvx2);
      enc::kernels::gf256_mul_acc(out_simd, in, kCoeff);
      enc::kernels::force_tier(prev);
    }
    ok &= shape_check("gf256 mul-acc: SIMD output is bit-identical to scalar",
                      out_scalar == out_simd);

    constexpr int kGfReps = 16;
    const auto best_at = [&](enc::kernels::Tier tier) {
      const enc::kernels::Tier prev = enc::kernels::force_tier(tier);
      enc::kernels::gf256_mul_acc(out_simd, in, kCoeff);  // warm
      double best = 1e30;
      for (int round = 0; round < 5; ++round) {
        util::WallTimer t;
        for (int i = 0; i < kGfReps; ++i) {
          enc::kernels::gf256_mul_acc(out_simd, in, kCoeff);
          benchmark::DoNotOptimize(out_simd.data());
        }
        best = std::min(best, t.seconds() / kGfReps);
      }
      enc::kernels::force_tier(prev);
      return best;
    };
    const double gf_scalar_s = best_at(enc::kernels::Tier::kScalar);
    const bool have_simd = [] {
      const enc::kernels::Tier prev = enc::kernels::force_tier(enc::kernels::Tier::kAvx2);
      const bool on = enc::kernels::active_tier() == enc::kernels::Tier::kAvx2;
      enc::kernels::force_tier(prev);
      return on;
    }();
    const double gf_simd_s = have_simd ? best_at(enc::kernels::Tier::kAvx2) : gf_scalar_s;
    const double gf_speedup = gf_scalar_s / gf_simd_s;
    std::printf("gf256 mul-acc 256KiB: scalar %.3fms, %s %.3fms (%.2fx)\n",
                gf_scalar_s * 1e3, have_simd ? "avx2" : "scalar", gf_simd_s * 1e3,
                gf_speedup);
    report.field("gf256_scalar_s", gf_scalar_s);
    report.field("gf256_simd_s", gf_simd_s);
    report.field("gf256_simd_speedup", gf_speedup);
    report.field("kernel_tier",
                 std::string(to_string(have_simd ? enc::kernels::Tier::kAvx2
                                                 : enc::kernels::Tier::kScalar)));
    if (have_simd) {
      ok &= shape_check("gf256 mul-acc: SIMD tier is >= 3x the scalar loop",
                        gf_speedup >= 3.0);
    } else {
      std::printf("[SKIP] gf256 SIMD speedup check (AVX2 tier not available)\n");
    }
  }
  report.end_object();
  util::write_json_file(util::report_path("BENCH_micro_encoding.json"), report);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_encode_comparison() ? 0 : 1;
}
