// Figure 13 — checkpoint size and encoding (checksum) time vs group size
// {4, 8, 16} on the two simulated systems.
//
// Two shapes from the paper:
//  * checkpoint size barely moves with group size (it is ~half of memory
//    either way; only the checksum shrinks as 1/(N-1));
//  * encoding time grows slowly with group size, and Tianhe-2 encodes
//    SLOWER than Tianhe-1A despite the faster NIC, because one Tianhe-2
//    port is shared by 24 ranks vs 12 — per-rank bandwidth is lower. The
//    virtual network model reproduces that inversion deterministically
//    (the wall-clock component is identical hardware for both systems, so
//    the network share is compared on the modeled charge).
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "model/systems.hpp"
#include "util/json_writer.hpp"

using namespace skt;

namespace {

struct Point {
  double encode_wall_s = 0.0;     ///< mean wall time per encode
  double encode_network_s = 0.0;  ///< mean modeled network time per encode
  std::size_t ckpt_bytes = 0;
  [[nodiscard]] double total() const { return encode_wall_s + encode_network_s; }
};

Point measure(const model::SystemProfile& system, int group) {
  const bench::Geometry geom{4, 4, 32};
  // One rank per simulated node (distinct-node constraint for group 16);
  // NIC port sharing comes from profile.ranks_per_port.
  bench::ClusterSpec spec;
  spec.ranks = geom.ranks();
  spec.profile = system.node;
  spec.model_network = true;

  const double fraction = ckpt::available_fraction(ckpt::Strategy::kSelf, group);
  const std::int64_t n = bench::fit_n(geom, static_cast<std::size_t>((8u << 20) * fraction));
  const std::int64_t nblk = (n + geom.nb - 1) / geom.nb;
  // Several checkpoints so the per-encode means are stable.
  auto config = bench::make_config(geom, n, ckpt::Strategy::kSelf, group,
                                   std::max<std::int64_t>(1, nblk / 5));

  Point point;
  (void)bench::run_job(spec, [&](mpi::Comm& world) {
    const hpl::SktHplResult r = hpl::run_skt_hpl(world, config);
    if (world.rank() == 0 && r.checkpoints > 0) {
      point.encode_wall_s = r.encode_total_s / r.checkpoints;
      point.encode_network_s = r.encode_virtual_total_s / r.checkpoints;
      point.ckpt_bytes = r.ckpt_bytes;
    }
  });
  return point;
}

}  // namespace

int main() {
  bench::print_header("Figure 13", "encoding time and checkpoint size vs group size");

  const std::vector<int> groups{4, 8, 16};
  std::map<int, Point> t1;
  std::map<int, Point> t2;
  for (const int g : groups) {
    t1[g] = measure(bench::bench_system(model::tianhe1a()), g);
    t2[g] = measure(bench::bench_system(model::tianhe2()), g);
  }

  util::Table table({"group size", "T1A ckpt size/proc", "T2 ckpt size/proc",
                     "T1A encode (wall+net)", "T2 encode (wall+net)", "T1A net share",
                     "T2 net share"});
  for (const int g : groups) {
    table.add_row({std::to_string(g), util::format_bytes(t1[g].ckpt_bytes),
                   util::format_bytes(t2[g].ckpt_bytes),
                   util::format_seconds(t1[g].total()), util::format_seconds(t2[g].total()),
                   util::format_seconds(t1[g].encode_network_s),
                   util::format_seconds(t2[g].encode_network_s)});
  }
  table.print();

  util::JsonWriter report;
  report.begin_object();
  for (const int g : groups) {
    const std::string tag = "g" + std::to_string(g);
    report.field(tag + "_t1a_ckpt_bytes", static_cast<std::uint64_t>(t1[g].ckpt_bytes));
    report.field(tag + "_t2_ckpt_bytes", static_cast<std::uint64_t>(t2[g].ckpt_bytes));
    report.field(tag + "_t1a_encode_s", t1[g].total());
    report.field(tag + "_t2_encode_s", t2[g].total());
    report.field(tag + "_t1a_net_s", t1[g].encode_network_s);
    report.field(tag + "_t2_net_s", t2[g].encode_network_s);
  }
  report.end_object();
  util::write_json_file(util::report_path("BENCH_fig13_encoding_cost.json"), report);

  bool ok = true;
  const double size_spread =
      static_cast<double>(t1[4].ckpt_bytes) / static_cast<double>(t1[16].ckpt_bytes);
  ok &= bench::shape_check(
      "checkpoint size is not very sensitive to group size (< 1.4x across 4..16)",
      size_spread < 1.4 && size_spread > 0.7);
  ok &= bench::shape_check(
      "network encode time grows with group size on both systems",
      t1[16].encode_network_s > t1[4].encode_network_s &&
          t2[16].encode_network_s > t2[4].encode_network_s);
  ok &= bench::shape_check(
      "Tianhe-2 encodes slower than Tianhe-1A (NIC port shared by 2x the ranks)",
      t2[8].encode_network_s > t1[8].encode_network_s &&
          t2[16].encode_network_s > t1[16].encode_network_s);
  return ok ? 0 : 1;
}
