// Ablation — the Section 3.3 process-mapping trade-off, which the paper
// describes but leaves unexplored ("Exploring more mapping strategies
// within one group is left for future work"):
//
//  * NEIGHBOR mapping groups nearby nodes: encoding traffic stays inside a
//    rack (lower switch latency) but a rack/switch failure can take out a
//    whole group — unrecoverable for a single-erasure code.
//  * SPREAD mapping strides groups across racks: encoding pays inter-rack
//    latency, but a full rack loss costs each group at most one member.
//
// This bench measures both sides: per-checkpoint encode network time under
// each mapping, and end-to-end survival of a whole-rack power-off
// (both nodes of rack 0 die in the same instant).
#include <cstring>
#include <functional>

#include "bench_common.hpp"
#include "ckpt/grouping.hpp"
#include "ckpt/session.hpp"

using namespace skt;

namespace {

constexpr int kRanks = 8;
constexpr int kGroup = 2;         // buddy groups, the Zheng-style extreme
constexpr int kNodesPerRack = 2;  // 4 racks
constexpr std::size_t kDataBytes = 1u << 20;

using IterHook = std::function<void(mpi::Comm&, std::uint64_t)>;

void checkpointed_loop(mpi::Comm& world, ckpt::Mapping mapping, int iterations,
                       double* encode_virtual, int* min_racks,
                       const IterHook& hook = {}) {
  std::vector<int> nodes(static_cast<std::size_t>(world.size()));
  std::vector<int> racks(static_cast<std::size_t>(world.size()));
  for (int r = 0; r < world.size(); ++r) {
    const int node_id = world.node_id_of(r);
    nodes[static_cast<std::size_t>(r)] = node_id;
    racks[static_cast<std::size_t>(r)] = world.runtime().cluster().node(node_id).rack();
  }
  const ckpt::GroupAssignment assignment =
      ckpt::plan_groups(world.size(), kGroup, nodes, racks, mapping);
  if (world.rank() == 0 && min_racks != nullptr) {
    int lo = 1 << 30;
    for (int g = 0; g < assignment.num_groups; ++g) {
      lo = std::min(lo, ckpt::racks_spanned(assignment, g, racks));
    }
    *min_racks = lo;
  }
  ckpt::Session session = ckpt::SessionBuilder{}
                              .strategy(ckpt::Strategy::kSelf)
                              .key_prefix("abl")
                              .data_bytes(kDataBytes)
                              .group(ckpt::make_group_comm(world, assignment))
                              .build(world);
  const bool restored = session.open() == ckpt::OpenOutcome::kRestored;
  auto* iter = reinterpret_cast<std::uint64_t*>(session.user_state().data());
  if (!restored) {
    *iter = 0;
    std::memset(session.data().data(), 0x3c, session.data().size());
  }
  double virt = 0.0;
  int commits = 0;
  while (*iter < static_cast<std::uint64_t>(iterations)) {
    world.failpoint("abl.work");
    if (hook) hook(world, *iter);
    *iter += 1;
    const ckpt::CommitStats stats = session.commit();
    virt += stats.encode_virtual_s;
    ++commits;
  }
  if (world.rank() == 0 && encode_virtual != nullptr && commits > 0) {
    *encode_virtual = virt / commits;
  }
}

/// Fault-free pass: encode network cost + rack footprint of the mapping.
void measure_encoding(ckpt::Mapping mapping, double* encode_s, int* min_racks) {
  sim::Cluster cluster(
      {.num_nodes = kRanks, .spare_nodes = 0, .nodes_per_rack = kNodesPerRack});
  mpi::LauncherConfig launcher_config;
  launcher_config.max_restarts = 0;
  launcher_config.runtime.model_network = true;
  mpi::JobLauncher launcher(cluster, nullptr, launcher_config);
  (void)launcher.run(kRanks, [&](mpi::Comm& w) {
    checkpointed_loop(w, mapping, 6, encode_s, min_racks);
  });
}

/// Failure pass: BOTH nodes of rack 0 die at the same instant — a
/// switch/rack failure, pulled by rank 0's iteration hook after two
/// checkpoints exist. The guard (both target nodes still in rack 0) keeps
/// post-restart replacements, which live on spare nodes in another rack,
/// from re-triggering. Returns whether the job finished.
bool survives_rack_loss(ckpt::Mapping mapping) {
  sim::Cluster cluster({.num_nodes = kRanks, .spare_nodes = kNodesPerRack,
                        .nodes_per_rack = kNodesPerRack});
  mpi::JobLauncher launcher(cluster, nullptr, {.max_restarts = 3});
  const auto result = launcher.run(kRanks, [&](mpi::Comm& w) {
    checkpointed_loop(w, mapping, 6, nullptr, nullptr,
                      [](mpi::Comm& world, std::uint64_t iter) {
                        if (iter != 2 || world.rank() != 0) return;
                        sim::Cluster& cl = world.runtime().cluster();
                        const int node0 = world.node_id_of(0);
                        const int node1 = world.node_id_of(1);
                        if (cl.node(node0).rack() != 0 || cl.node(node1).rack() != 0) return;
                        cl.power_off(node1, "rack 0 switch failure");
                        cl.power_off(node0, "rack 0 switch failure");
                        throw mpi::JobAborted("rack 0 lost");
                      });
  });
  return result.success;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "group mapping strategies (Section 3.3)");

  double neighbor_encode = 0.0;
  double spread_encode = 0.0;
  int neighbor_racks = 0;
  int spread_racks = 0;
  measure_encoding(ckpt::Mapping::kNeighbor, &neighbor_encode, &neighbor_racks);
  measure_encoding(ckpt::Mapping::kSpread, &spread_encode, &spread_racks);
  const bool neighbor_survives = survives_rack_loss(ckpt::Mapping::kNeighbor);
  const bool spread_survives = survives_rack_loss(ckpt::Mapping::kSpread);

  util::Table table({"mapping", "min racks per group", "encode network time",
                     "survives whole-rack loss"});
  table.add_row({"neighbor (paper default)", std::to_string(neighbor_racks),
                 util::format_seconds(neighbor_encode), neighbor_survives ? "yes" : "NO"});
  table.add_row({"spread", std::to_string(spread_racks),
                 util::format_seconds(spread_encode), spread_survives ? "yes" : "NO"});
  table.print();
  std::printf(
      "\nthe paper prioritizes performance (neighbor) because real-system failure\n"
      "logs show rack/switch failures are rare next to single-node failures.\n");

  bool ok = true;
  ok &= bench::shape_check(
      "neighbor groups stay within one rack; spread groups span racks",
      neighbor_racks == 1 && spread_racks >= 2);
  ok &= bench::shape_check(
      "neighbor mapping encodes faster (intra-rack latency)",
      neighbor_encode < spread_encode);
  ok &= bench::shape_check(
      "only the spread mapping survives a whole-rack failure",
      !neighbor_survives && spread_survives);
  return ok ? 0 : 1;
}
