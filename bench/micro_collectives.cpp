// Microbenchmarks for the SimMPI collectives that dominate the checkpoint
// protocol: group reduce (the encoder's workhorse), bcast, barrier, and
// the GroupCodec encode itself. Each benchmark iteration runs one job over
// rank threads performing `kOpsPerJob` operations, so thread spawn cost is
// amortized out of the per-op figure.
#include <benchmark/benchmark.h>

#include <vector>

#include "encoding/group_codec.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace skt;

constexpr int kOpsPerJob = 64;

void run_collective_job(int ranks, const std::function<void(mpi::Comm&)>& fn) {
  sim::Cluster cluster(
      {.num_nodes = ranks, .spare_nodes = 0, .nodes_per_rack = 4, .profile = {}});
  std::vector<int> ranklist(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) ranklist[static_cast<std::size_t>(r)] = r;
  mpi::Runtime rt(cluster, ranklist);
  (void)rt.run(fn);
}

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_collective_job(ranks, [](mpi::Comm& world) {
      for (int i = 0; i < kOpsPerJob; ++i) world.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerJob);
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Bcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [bytes](mpi::Comm& world) {
      std::vector<std::uint64_t> buf(bytes / 8, 7);
      for (int i = 0; i < kOpsPerJob; ++i) {
        world.bcast<std::uint64_t>(i % world.size(), buf);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerJob *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Bcast)->Args({8, 4 << 10})->Args({8, 256 << 10})->Args({16, 64 << 10})
    ->Unit(benchmark::kMillisecond);

void BM_BcastPipeline(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [bytes](mpi::Comm& world) {
      std::vector<std::uint64_t> buf(bytes / 8, 7);
      for (int i = 0; i < kOpsPerJob; ++i) {
        world.bcast_pipeline<std::uint64_t>(i % world.size(), buf, 16 << 10);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerJob *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BcastPipeline)->Args({8, 256 << 10})->Args({16, 64 << 10})
    ->Unit(benchmark::kMillisecond);

void BM_ReduceXor(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [bytes](mpi::Comm& world) {
      std::vector<std::uint64_t> in(bytes / 8, 0x55aa);
      std::vector<std::uint64_t> out(bytes / 8);
      for (int i = 0; i < kOpsPerJob; ++i) {
        world.reduce<std::uint64_t>(i % world.size(), in, out, mpi::BXor{});
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerJob *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ReduceXor)->Args({8, 64 << 10})->Args({16, 64 << 10})
    ->Unit(benchmark::kMillisecond);

void BM_GroupEncode(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto data_bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [ranks, data_bytes](mpi::Comm& world) {
      const enc::GroupCodec codec(enc::CodecKind::kXor, data_bytes, ranks);
      std::vector<std::byte> data(codec.padded_bytes(), std::byte(world.rank() + 1));
      std::vector<std::byte> checksum(codec.checksum_bytes());
      for (int i = 0; i < 4; ++i) codec.encode(world, data, checksum);
    });
  }
  state.SetBytesProcessed(state.iterations() * 4 * static_cast<std::int64_t>(data_bytes));
}
BENCHMARK(BM_GroupEncode)->Args({4, 1 << 20})->Args({8, 1 << 20})->Args({16, 1 << 20})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
