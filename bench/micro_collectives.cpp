// Microbenchmarks for the SimMPI collectives that dominate the checkpoint
// protocol: group reduce (the encoder's workhorse), reduce-scatter, ring
// allreduce, bcast, barrier, and the GroupCodec encode itself (both the
// reduce-scatter path and the sequential-reduce reference). Each benchmark
// iteration runs one job over rank threads performing `kOpsPerJob`
// operations, so thread spawn cost is amortized out of the per-op figure.
//
// main() additionally times binomial vs ring allreduce across message
// sizes and group sizes {4, 8, 16} and writes BENCH_micro_collectives.json.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "encoding/group_codec.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"
#include "util/clock.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace skt;

constexpr int kOpsPerJob = 64;

mpi::JobResult run_collective_job(int ranks, const std::function<void(mpi::Comm&)>& fn) {
  sim::Cluster cluster(
      {.num_nodes = ranks, .spare_nodes = 0, .nodes_per_rack = 4, .profile = {}});
  std::vector<int> ranklist(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) ranklist[static_cast<std::size_t>(r)] = r;
  mpi::Runtime rt(cluster, ranklist);
  return rt.run(fn);
}

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_collective_job(ranks, [](mpi::Comm& world) {
      for (int i = 0; i < kOpsPerJob; ++i) world.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerJob);
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Bcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [bytes](mpi::Comm& world) {
      std::vector<std::uint64_t> buf(bytes / 8, 7);
      for (int i = 0; i < kOpsPerJob; ++i) {
        world.bcast<std::uint64_t>(i % world.size(), buf);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerJob *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Bcast)->Args({8, 4 << 10})->Args({8, 256 << 10})->Args({16, 64 << 10})
    ->Unit(benchmark::kMillisecond);

void BM_BcastPipeline(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [bytes](mpi::Comm& world) {
      std::vector<std::uint64_t> buf(bytes / 8, 7);
      for (int i = 0; i < kOpsPerJob; ++i) {
        world.bcast_pipeline<std::uint64_t>(i % world.size(), buf, 16 << 10);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerJob *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BcastPipeline)->Args({8, 256 << 10})->Args({16, 64 << 10})
    ->Unit(benchmark::kMillisecond);

void BM_ReduceXor(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [bytes](mpi::Comm& world) {
      std::vector<std::uint64_t> in(bytes / 8, 0x55aa);
      std::vector<std::uint64_t> out(bytes / 8);
      for (int i = 0; i < kOpsPerJob; ++i) {
        world.reduce<std::uint64_t>(i % world.size(), in, out, mpi::BXor{});
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerJob *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ReduceXor)->Args({8, 64 << 10})->Args({16, 64 << 10})
    ->Unit(benchmark::kMillisecond);

void BM_ReduceScatter(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));  // total input
  for (auto _ : state) {
    run_collective_job(ranks, [ranks, bytes](mpi::Comm& world) {
      const std::size_t count = bytes / 8 / static_cast<std::size_t>(ranks);
      std::vector<std::uint64_t> in(count * static_cast<std::size_t>(ranks), 0x55aa);
      std::vector<std::uint64_t> out(count);
      for (int i = 0; i < kOpsPerJob; ++i) {
        world.reduce_scatter<std::uint64_t>(in, out, mpi::BXor{});
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerJob *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ReduceScatter)->Args({4, 64 << 10})->Args({8, 64 << 10})->Args({16, 64 << 10})
    ->Args({8, 1 << 20})->Args({16, 1 << 20})->Unit(benchmark::kMillisecond);

void BM_AllreduceRing(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [ranks, bytes](mpi::Comm& world) {
      const std::size_t count =
          bytes / 8 / static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks);
      std::vector<std::uint64_t> buf(count, 0x55aa);
      for (int i = 0; i < kOpsPerJob; ++i) {
        world.allreduce_ring<std::uint64_t>(buf, buf, mpi::BXor{});
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerJob *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AllreduceRing)->Args({8, 64 << 10})->Args({16, 64 << 10})->Args({16, 1 << 20})
    ->Unit(benchmark::kMillisecond);

void encode_job(benchmark::State& state, bool reference) {
  const int ranks = static_cast<int>(state.range(0));
  const auto data_bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run_collective_job(ranks, [ranks, data_bytes, reference](mpi::Comm& world) {
      const enc::GroupCodec codec(enc::CodecKind::kXor, data_bytes, ranks);
      std::vector<std::byte> data(codec.padded_bytes(), std::byte(world.rank() + 1));
      std::vector<std::byte> checksum(codec.checksum_bytes());
      for (int i = 0; i < 4; ++i) {
        if (reference) {
          codec.encode_reference(world, data, checksum);
        } else {
          codec.encode(world, data, checksum);
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 4 * static_cast<std::int64_t>(data_bytes));
}

void BM_GroupEncode(benchmark::State& state) { encode_job(state, false); }
BENCHMARK(BM_GroupEncode)->Args({4, 1 << 20})->Args({8, 1 << 20})->Args({16, 1 << 20})
    ->Unit(benchmark::kMillisecond);

void BM_GroupEncodeReference(benchmark::State& state) { encode_job(state, true); }
BENCHMARK(BM_GroupEncodeReference)->Args({4, 1 << 20})->Args({8, 1 << 20})
    ->Args({16, 1 << 20})->Unit(benchmark::kMillisecond);

// --- binomial vs ring allreduce sweep for the JSON report -------------------

double time_allreduce(int ranks, std::size_t bytes, bool ring) {
  double best = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const mpi::JobResult result = run_collective_job(ranks, [bytes, ring](mpi::Comm& world) {
      const std::size_t count = bytes / 8 / static_cast<std::size_t>(world.size()) *
                                static_cast<std::size_t>(world.size());
      std::vector<std::uint64_t> buf(count, 0x33cc);
      world.barrier();
      util::WallTimer timer;
      for (int i = 0; i < kOpsPerJob; ++i) {
        if (ring) {
          world.allreduce_ring<std::uint64_t>(buf, buf, mpi::BXor{});
        } else {
          std::vector<std::uint64_t> out(buf.size());
          world.reduce<std::uint64_t>(0, buf, out, mpi::BXor{});
          world.bcast<std::uint64_t>(0, out);
        }
      }
      world.record_time("op", timer.seconds());
    });
    const double t = result.times.at("op") / kOpsPerJob;
    if (attempt == 0 || t < best) best = t;
  }
  return best;
}

int run_allreduce_sweep() {
  std::printf("\n--- allreduce: binomial reduce+bcast vs ring, per-op wall time ---\n");
  util::JsonWriter report;
  report.begin_object();
  for (const int g : {4, 8, 16}) {
    for (const std::size_t bytes : {std::size_t{64} << 10, std::size_t{1} << 20}) {
      const double binomial = time_allreduce(g, bytes, false);
      const double ring = time_allreduce(g, bytes, true);
      std::printf("group %2d, %4zuKiB: binomial %8.3fms  ring %8.3fms  (%.2fx)\n", g,
                  bytes >> 10, binomial * 1e3, ring * 1e3, binomial / ring);
      const std::string tag =
          "allreduce_g" + std::to_string(g) + "_" + std::to_string(bytes >> 10) + "k";
      report.field(tag + "_binomial_s", binomial);
      report.field(tag + "_ring_s", ring);
    }
  }
  report.end_object();
  util::write_json_file(util::report_path("BENCH_micro_collectives.json"), report);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_allreduce_sweep();
}
