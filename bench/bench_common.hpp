// Shared harness for the per-figure/per-table bench binaries.
//
// Scale note (documented in DESIGN.md): rank threads timeshare the host
// cores, so HPL "efficiency" is defined as measured useful GFLOP/s over
// the calibrated single-thread GEMM peak — i.e. the fraction of machine
// time spent in the O(N^3) kernel. That is precisely the quantity the
// paper's efficiency model E(N) = N/(aN+b) describes, so the figures'
// shapes transfer even though absolute FLOP rates are workstation-scale.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "hpl/driver.hpp"
#include "hpl/skt_hpl.hpp"
#include "mpi/launcher.hpp"
#include "model/systems.hpp"
#include "sim/cluster.hpp"
#include "util/format.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace skt::bench {

/// Calibrated single-thread GEMM peak (GFLOP/s), measured once per binary.
inline double peak_gflops() {
  static const double peak = hpl::calibrate_peak_gflops(320, 3);
  return peak;
}

/// Network bandwidths are scaled down by this factor for the HPL figure
/// benches: a real node computes ~20-1400 flops per byte of NIC bandwidth,
/// while this workstation's GEMM is ~100x slower than a supercomputer node
/// — shrinking the modeled NIC by the same factor restores the paper's
/// compute/communication balance, which is what E(N) = N/(aN+b) describes.
inline constexpr double kNetworkScale = 20.0;

/// A system profile with its NIC scaled to bench proportions.
inline model::SystemProfile bench_system(const model::SystemProfile& system) {
  model::SystemProfile scaled = system;
  scaled.node.nic_bandwidth_Bps /= kNetworkScale;
  return scaled;
}

/// Generic profile for single-system sweeps: `per_rank_bw` bytes/s of NIC
/// bandwidth per rank.
inline sim::NodeProfile bench_network_profile(double per_rank_bw) {
  sim::NodeProfile profile;
  profile.nic_bandwidth_Bps = per_rank_bw;
  profile.nic_latency_s = 5.0e-6;
  profile.ranks_per_port = 1;
  return profile;
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

/// Print a shape assertion the paper makes; benches end with these so a
/// regression in the reproduction is visible in plain output.
inline bool shape_check(const std::string& what, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok;
}

struct ClusterSpec {
  int ranks = 8;
  int ranks_per_node = 1;
  int spares = 2;
  sim::NodeProfile profile;
  bool model_network = false;
};

/// Run one job (optionally with failure injection) and return the result.
inline mpi::LaunchResult run_job(const ClusterSpec& spec,
                                 const std::function<void(mpi::Comm&)>& fn,
                                 sim::FailureInjector* injector = nullptr,
                                 mpi::LauncherConfig launcher_config = {}) {
  const int nodes = (spec.ranks + spec.ranks_per_node - 1) / spec.ranks_per_node;
  sim::Cluster cluster(
      {.num_nodes = nodes, .spare_nodes = spec.spares, .nodes_per_rack = 4,
       .profile = spec.profile});
  launcher_config.ranks_per_node = spec.ranks_per_node;
  launcher_config.runtime.model_network = spec.model_network;
  mpi::JobLauncher launcher(cluster, injector, launcher_config);
  return launcher.run(spec.ranks, fn);
}

struct HplRun {
  bool ok = false;
  hpl::SktHplResult skt;
  double total_s = 0.0;      ///< wall + virtual across all attempts
  double gflops = 0.0;       ///< useful flops over total_s
  double efficiency = 0.0;   ///< gflops / peak_gflops()
  int restarts = 0;
};

/// Run SKT-HPL (any strategy, including kNone = original HPL) once on a
/// fresh cluster and report totals including virtual time.
inline HplRun run_hpl_job(const ClusterSpec& spec, const hpl::SktHplConfig& config,
                          sim::FailureInjector* injector = nullptr,
                          mpi::LauncherConfig launcher_config = {}) {
  HplRun run;
  hpl::SktHplResult local{};
  const mpi::LaunchResult result = run_job(
      spec,
      [&](mpi::Comm& world) {
        const hpl::SktHplResult r = hpl::run_skt_hpl(world, config);
        if (world.rank() == 0) local = r;
      },
      injector, launcher_config);
  run.ok = result.success && local.hpl.residual.pass;
  run.skt = local;
  run.restarts = result.restarts;
  run.total_s = result.total_real_s + result.total_virtual_s;
  if (run.total_s > 0) {
    run.gflops = hpl::hpl_flops(config.hpl.n) / run.total_s * 1e-9;
    run.efficiency = run.gflops / peak_gflops();
  }
  return run;
}

/// Median-of-`reps` wrapper over run_hpl_job: the host is a shared,
/// single-core machine with ~±10% wall-clock noise, so every figure that
/// compares GFLOP rates uses the median of several runs.
inline HplRun run_hpl_job_median(const ClusterSpec& spec, const hpl::SktHplConfig& config,
                                 int reps) {
  std::vector<HplRun> runs;
  for (int i = 0; i < reps; ++i) {
    runs.push_back(run_hpl_job(spec, config));
    if (!runs.back().ok) return runs.back();
  }
  std::sort(runs.begin(), runs.end(),
            [](const HplRun& a, const HplRun& b) { return a.gflops < b.gflops; });
  return runs[runs.size() / 2];
}

/// HPL geometry used throughout the benches unless a figure needs more.
struct Geometry {
  int P = 2;
  int Q = 4;
  std::int64_t nb = 32;
  [[nodiscard]] int ranks() const { return P * Q; }
};

/// Largest nb-aligned problem for an application-memory budget per rank.
inline std::int64_t fit_n(const Geometry& g, std::size_t app_bytes_per_rank) {
  return hpl::max_problem_size(app_bytes_per_rank, g.nb, g.P, g.Q);
}

inline hpl::SktHplConfig make_config(const Geometry& g, std::int64_t n,
                                     ckpt::Strategy strategy, int group_size,
                                     std::int64_t ckpt_every) {
  hpl::SktHplConfig config;
  config.hpl.n = n;
  config.hpl.nb = g.nb;
  config.hpl.grid_p = g.P;
  config.hpl.grid_q = g.Q;
  config.strategy = strategy;
  config.group_size = group_size;
  config.ckpt_every_panels = ckpt_every;
  return config;
}

}  // namespace skt::bench
