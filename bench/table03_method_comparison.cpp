// Table 3 — comparison of fault-tolerant HPL methods: original HPL,
// ABFT-HPL, BLCR on HDD and SSD, the SCR-style double in-memory
// checkpoint, and SKT-HPL with self-checkpoint.
//
// Methodology mirrors Section 6.2 at workstation scale:
//  * every method gets the same per-process memory capacity; in-memory
//    checkpoint methods can only use their Eq. 2/3 fraction of it, so they
//    solve smaller problems — exactly the paper's "Available Memory"
//    column;
//  * the BLCR device bandwidths are calibrated so one checkpoint costs the
//    same fraction of the fault-free runtime as in the paper (295 s and
//    112 s against a 2338 s run) — the scale-down preserves the
//    checkpoint-time/compute ratio that drives the ranking;
//  * "Recover after node powered-off?" physically powers a node off
//    mid-elimination and reports whether the job resumed from checkpoints
//    (methods without checkpoints fail, as on the real cluster).
#include <vector>

#include "bench_common.hpp"
#include "hpl/abft.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"

using namespace skt;

namespace {

struct Row {
  std::string method;
  std::int64_t n = 0;
  double runtime_no_ckpt = 0.0;
  double ckpt_time = 0.0;     // one checkpoint
  double gflops = 0.0;        // with periodic checkpoints
  std::size_t app_bytes = 0;  // available application memory per process
  double normalized = 0.0;    // vs original HPL GFLOP/s
  std::string recovers;
};

constexpr std::size_t kCapacityPerRank = 6u << 20;  // the "4 GB" of the scaled cluster
constexpr int kGroup = 8;
constexpr int kReps = 3;  // median-of-3 against host wall-clock noise

bench::Geometry geom{2, 4, 32};

/// All rows run on the same simulated cluster network: per-rank NIC of
/// 140 MB/s, the bandwidth that reproduces the paper's memory-size
/// efficiency penalty at this GEMM speed (see bench_common.hpp).
bench::ClusterSpec method_spec() {
  bench::ClusterSpec spec;
  spec.ranks = geom.ranks();
  spec.profile = bench::bench_network_profile(140.0e6);
  spec.model_network = true;
  return spec;
}

/// Power-off probe: inject a node loss mid-elimination and report whether
/// the job completed by RESUMING from a checkpoint (not by recomputing).
std::string poweroff_verdict(ckpt::Strategy strategy, std::int64_t n, std::int64_t ckpt_every,
                             storage::SnapshotVault* vault,
                             const storage::DeviceProfile& device) {
  sim::FailureInjector injector;
  injector.add_rule({.point = "hpl.panel", .world_rank = 1,
                     .hit = static_cast<int>(ckpt_every + 1), .repeat = false});
  auto config = bench::make_config(geom, n, strategy, kGroup, ckpt_every);
  config.vault = vault;
  config.device = device;
  const bench::HplRun run =
      bench::run_hpl_job(method_spec(), config, &injector, {.max_restarts = 2});
  return run.ok && run.skt.restored ? "YES" : "NO";
}

}  // namespace

int main() {
  bench::print_header("Table 3", "comparison between methods of fault-tolerant HPL");
  std::printf("per-process capacity: %s, group size %d, grid %dx%d\n",
              util::format_bytes(kCapacityPerRank).c_str(), kGroup, geom.P, geom.Q);

  std::vector<Row> rows;
  const std::int64_t n_full = bench::fit_n(geom, kCapacityPerRank);
  const std::int64_t nblk = (n_full + geom.nb - 1) / geom.nb;
  const std::int64_t ckpt_every = std::max<std::int64_t>(1, nblk / 4);

  // ----------------------------------------------------- 1. original HPL
  Row original;
  {
    const auto config = bench::make_config(geom, n_full, ckpt::Strategy::kNone, kGroup, 0);
    const bench::HplRun run = bench::run_hpl_job_median(method_spec(), config, kReps);
    original = {"Original HPL", n_full, run.total_s, 0.0, run.gflops, kCapacityPerRank,
                1.0, "NO (no checkpoint)"};
    rows.push_back(original);
  }

  // ------------------------------------------------------------- 2. ABFT
  {
    double gflops = 0.0;
    double runtime = 0.0;
    bool ok = false;
    const auto result = bench::run_job(method_spec(), [&](mpi::Comm& world) {
      hpl::AbftConfig config;
      config.hpl.n = n_full;
      config.hpl.nb = geom.nb;
      config.hpl.grid_p = geom.P;
      config.hpl.grid_q = geom.Q;
      config.verify_every_panels = 1;
      const hpl::AbftResult r = hpl::run_abft_hpl(world, config);
      if (world.rank() == 0) {
        gflops = r.hpl.gflops;
        runtime = r.hpl.elapsed_s + r.hpl.virtual_s;
        ok = r.hpl.residual.pass && r.checksum_ok;
      }
    });
    rows.push_back({"ABFT", n_full, runtime, 0.0, gflops, kCapacityPerRank,
                    gflops / original.gflops,
                    result.success && ok ? "NO (MPI aborts, no state survives)" : "NO"});
  }

  // ------------------------------------------- 3./4. BLCR on HDD and SSD
  // Calibrate device bandwidth so a checkpoint costs the paper's fraction
  // of the fault-free runtime (295/2338 for HDD, 112/2338 for SSD).
  const std::size_t image_bytes = kCapacityPerRank;
  for (const auto& [name, fraction] :
       std::vector<std::pair<std::string, double>>{{"BLCR+HDD", 295.2 / 2338.6},
                                                   {"BLCR+SSD", 111.9 / 2338.6}}) {
    storage::DeviceProfile device;
    device.name = name;
    device.write_bandwidth_Bps =
        static_cast<double>(image_bytes) / (fraction * original.runtime_no_ckpt);
    device.read_bandwidth_Bps = device.write_bandwidth_Bps * 1.2;
    device.latency_s = 1e-3;
    storage::SnapshotVault vault;

    auto config = bench::make_config(geom, n_full, ckpt::Strategy::kBlcr, kGroup, ckpt_every);
    config.vault = &vault;
    config.device = device;
    const bench::HplRun run = bench::run_hpl_job_median(method_spec(), config, kReps);
    storage::SnapshotVault vault2;
    rows.push_back({name, n_full, original.runtime_no_ckpt,
                    run.skt.checkpoints > 0 ? run.skt.ckpt_total_s / run.skt.checkpoints : 0,
                    run.gflops, kCapacityPerRank, run.gflops / original.gflops,
                    poweroff_verdict(ckpt::Strategy::kBlcr, n_full, ckpt_every, &vault2,
                                     device)});
  }

  // ----------------------------- 5. SCR-style double in-memory checkpoint
  {
    const double fraction = ckpt::available_fraction(ckpt::Strategy::kDouble, kGroup);
    const auto app_bytes = static_cast<std::size_t>(kCapacityPerRank * fraction);
    const std::int64_t n = bench::fit_n(geom, app_bytes);
    auto config = bench::make_config(geom, n, ckpt::Strategy::kDouble, kGroup, ckpt_every);
    const bench::HplRun run = bench::run_hpl_job_median(method_spec(), config, kReps);
    rows.push_back({"SCR+Memory (double)", n, run.total_s - run.skt.ckpt_total_s,
                    run.skt.checkpoints > 0 ? run.skt.ckpt_total_s / run.skt.checkpoints : 0,
                    run.gflops, app_bytes, run.gflops / original.gflops,
                    poweroff_verdict(ckpt::Strategy::kDouble, n, ckpt_every, nullptr, {})});
  }

  // ------------------------------------------- 6. SKT-HPL (self-checkpoint)
  {
    const double fraction = ckpt::available_fraction(ckpt::Strategy::kSelf, kGroup);
    const auto app_bytes = static_cast<std::size_t>(kCapacityPerRank * fraction);
    const std::int64_t n = bench::fit_n(geom, app_bytes);
    auto config = bench::make_config(geom, n, ckpt::Strategy::kSelf, kGroup, ckpt_every);
    const bench::HplRun run = bench::run_hpl_job_median(method_spec(), config, kReps);
    rows.push_back({"SKT-HPL (self)", n, run.total_s - run.skt.ckpt_total_s,
                    run.skt.checkpoints > 0 ? run.skt.ckpt_total_s / run.skt.checkpoints : 0,
                    run.gflops, app_bytes, run.gflops / original.gflops,
                    poweroff_verdict(ckpt::Strategy::kSelf, n, ckpt_every, nullptr, {})});
  }

  util::Table table({"method", "problem size", "runtime (no ckpt)", "ckpt time",
                     "GFLOP/s (with ckpts)", "available memory", "normalized eff.",
                     "recovers after power-off?"});
  for (const Row& row : rows) {
    table.add_row({row.method, std::to_string(row.n),
                   util::format_seconds(row.runtime_no_ckpt),
                   row.ckpt_time > 0 ? util::format_seconds(row.ckpt_time) : "-",
                   util::format("{:.2f}", row.gflops), util::format_bytes(row.app_bytes),
                   util::format("{:.1%}", row.normalized), row.recovers});
  }
  table.print();

  const Row& blcr_hdd = rows[2];
  const Row& blcr_ssd = rows[3];
  const Row& scr = rows[4];
  const Row& skt = rows[5];
  bool ok = true;
  ok &= bench::shape_check("SKT-HPL has the best normalized efficiency of the FT methods",
                           skt.normalized > scr.normalized &&
                               skt.normalized > blcr_hdd.normalized &&
                               skt.normalized > blcr_ssd.normalized);
  ok &= bench::shape_check(
      "SKT-HPL achieves > 85% of the original HPL (paper: 94.5% at its far "
      "larger problem sizes)",
      skt.normalized > 0.85);
  ok &= bench::shape_check("SKT-HPL beats the double-checkpoint (SCR) row",
                           skt.normalized > scr.normalized);
  ok &= bench::shape_check(
      "SKT solves a larger problem than SCR (43.8% vs 30.4% of memory)",
      skt.n > scr.n && skt.app_bytes > scr.app_bytes);
  ok &= bench::shape_check("BLCR+SSD beats BLCR+HDD",
                           blcr_ssd.normalized > blcr_hdd.normalized);
  ok &= bench::shape_check("only checkpointing methods recover from power-off",
                           rows[0].recovers.substr(0, 2) == "NO" &&
                               rows[1].recovers.substr(0, 2) == "NO" &&
                               blcr_hdd.recovers == "YES" && blcr_ssd.recovers == "YES" &&
                               scr.recovers == "YES" && skt.recovers == "YES");
  ok &= bench::shape_check(
      "in-memory checkpoint time is far below the HDD checkpoint time (paper: 6.2 s vs "
      "295 s; here the single-core encode narrows but preserves the gap)",
      skt.ckpt_time < 0.25 * blcr_hdd.ckpt_time);
  return ok ? 0 : 1;
}
