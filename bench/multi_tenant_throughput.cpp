// Multi-tenant bench — what sharing one StoreService costs: three
// identical 2-rank jobs commit E epochs of B bytes per rank through the
// async pipeline, first ISOLATED (each job alone, back to back, its own
// service) and then CONCURRENT (three threads, one shared service, fair-
// share turnstile + admission in the path).
//
// The headline number is the aggregate-throughput retention
//   (total_bytes / T_concurrent) / (total_bytes / sum of isolated times)
// i.e. sum-of-isolated-walls over the concurrent wall. On this
// timesharing host the concurrent phase cannot beat the core count, so
// retention ~1.0 means the service machinery (turnstile, admission,
// locks) adds nothing material; the acceptance bar is >= 0.6 — a
// pathological dispatcher (stalls, serialization bugs, timeouts) blows
// the concurrent wall up and fails loudly. The concurrent phase also
// re-checks the fairness gate.
//
//   ./multi_tenant_throughput [--epochs 8] [--bytes 262144] [--reps 3]
//                             [--smoke]
//                             [--report BENCH_multi_tenant.json]
//
// --smoke shrinks the problem for the ctest wiring. Both phases take the
// best of --reps attempts: walls are milliseconds here, so a single
// scheduler hiccup would otherwise dominate the ratio.
#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/session.hpp"
#include "ckpt/store_service.hpp"
#include "telemetry/report.hpp"
#include "util/json_writer.hpp"
#include "util/options.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace skt;

namespace {

constexpr int kTenants = 3;
constexpr int kRanksPerTenant = 2;

/// One tenant's job: a 2-rank group committing `epochs` full rewrites of
/// `bytes` per rank through commit_async against `service`.
bool run_tenant_job(ckpt::StoreService& service, const std::string& tenant,
                    std::size_t bytes, int epochs) {
  bench::ClusterSpec spec;
  spec.ranks = kRanksPerTenant;
  spec.spares = 0;
  const auto result = bench::run_job(spec, [&](mpi::Comm& world) {
    ckpt::Session session = ckpt::SessionBuilder{}
                                .strategy(ckpt::Strategy::kSelf)
                                .key_prefix("bench")
                                .data_bytes(bytes)
                                .group_size(kRanksPerTenant)
                                .mode(ckpt::CommitMode::kAsync)
                                .service(&service)
                                .tenant(tenant)
                                .build(world);
    (void)session.open();
    std::span<double> lanes{reinterpret_cast<double*>(session.data().data()),
                            session.data().size() / sizeof(double)};
    for (int e = 0; e < epochs; ++e) {
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        lanes[i] = util::element_value(static_cast<std::uint64_t>(e),
                                       static_cast<std::uint64_t>(world.rank()), i);
      }
      session.mark_all_dirty();
      session.commit_async();
    }
    session.drain();
  });
  return result.success;
}

struct PhaseRun {
  bool ok = false;
  double wall_s = 0.0;
  double fairness = 1.0;  ///< concurrent phase only
};

/// Each tenant alone, back to back, a fresh service per job: the no-
/// interference baseline.
PhaseRun run_isolated(std::size_t bytes, int epochs) {
  PhaseRun run;
  run.ok = true;
  util::WallTimer timer;
  for (int i = 0; i < kTenants; ++i) {
    ckpt::StoreService service;
    const std::string tenant = "iso-" + std::to_string(i);
    service.register_tenant({.name = tenant});
    run.ok = run.ok && run_tenant_job(service, tenant, bytes, epochs);
  }
  run.wall_s = timer.seconds();
  return run;
}

/// All tenants at once through ONE service (default two-wide turnstile).
PhaseRun run_concurrent(std::size_t bytes, int epochs) {
  PhaseRun run;
  ckpt::StoreService service;
  std::vector<std::string> tenants;
  for (int i = 0; i < kTenants; ++i) {
    tenants.push_back("con-" + std::to_string(i));
    service.register_tenant({.name = tenants.back()});
  }
  std::atomic<int> failures{0};
  util::WallTimer timer;
  std::vector<std::thread> jobs;
  for (int i = 0; i < kTenants; ++i) {
    jobs.emplace_back([&, i] {
      if (!run_tenant_job(service, tenants[i], bytes, epochs)) failures.fetch_add(1);
    });
  }
  for (std::thread& t : jobs) t.join();
  run.wall_s = timer.seconds();
  run.ok = failures.load() == 0;
  run.fairness = service.fairness_ratio();
  return run;
}

/// Best (shortest-wall) of `reps` attempts per phase: the host timeshares
/// rank threads, so single-shot walls are noisy and the MINIMUM is the
/// least-contaminated estimate of each phase's cost.
PhaseRun best_of(int reps, const std::function<PhaseRun()>& phase) {
  PhaseRun best;
  for (int i = 0; i < reps; ++i) {
    const PhaseRun r = phase();
    if (!r.ok) return r;
    if (i == 0 || r.wall_s < best.wall_s) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const bool smoke = opts.get_bool("smoke", false);
  const int epochs = static_cast<int>(opts.get_int("epochs", smoke ? 6 : 8));
  const std::size_t bytes =
      static_cast<std::size_t>(opts.get_int("bytes", smoke ? 262144 : 1048576));
  const int reps = static_cast<int>(opts.get_int("reps", 3));
  const std::string report_path =
      opts.get("report", util::report_path("BENCH_multi_tenant.json"));

  bench::print_header("StoreService",
                      "aggregate commit throughput: shared service vs isolated");

  const PhaseRun isolated = best_of(reps, [&] { return run_isolated(bytes, epochs); });
  const PhaseRun concurrent = best_of(reps, [&] { return run_concurrent(bytes, epochs); });

  const std::size_t total_bytes = static_cast<std::size_t>(kTenants) * kRanksPerTenant *
                                  static_cast<std::size_t>(epochs) * bytes;
  const double iso_Bps = isolated.wall_s > 0 ? total_bytes / isolated.wall_s : 0.0;
  const double con_Bps = concurrent.wall_s > 0 ? total_bytes / concurrent.wall_s : 0.0;
  const double retention = iso_Bps > 0 ? con_Bps / iso_Bps : 0.0;

  util::Table table({"phase", "wall", "aggregate throughput", "fairness"});
  table.add_row({"isolated x3", util::format_seconds(isolated.wall_s),
                 util::format("{:.1f} MB/s", iso_Bps / 1e6), "-"});
  table.add_row({"concurrent", util::format_seconds(concurrent.wall_s),
                 util::format("{:.1f} MB/s", con_Bps / 1e6),
                 util::format("{:.2f}", concurrent.fairness)});
  table.print();
  std::printf("\naggregate-throughput retention (concurrent/isolated): %.3f\n", retention);

  telemetry::RunReport report("multi_tenant_throughput");
  report.set("tenants", static_cast<std::int64_t>(kTenants));
  report.set("ranks_per_tenant", static_cast<std::int64_t>(kRanksPerTenant));
  report.set("epochs", static_cast<std::int64_t>(epochs));
  report.set("bytes_per_rank_epoch", static_cast<std::int64_t>(bytes));
  report.set("reps", static_cast<std::int64_t>(reps));
  report.set("isolated_wall_s", isolated.wall_s);
  report.set("concurrent_wall_s", concurrent.wall_s);
  report.set("isolated_aggregate_Bps", iso_Bps);
  report.set("concurrent_aggregate_Bps", con_Bps);
  report.set("throughput_retention", retention);
  report.set("concurrent_fairness_ratio", concurrent.fairness);
  report.write(report_path);
  std::printf("report written to %s\n", report_path.c_str());

  bool ok = true;
  ok &= bench::shape_check("isolated runs complete", isolated.ok);
  ok &= bench::shape_check("concurrent runs complete (no cross-tenant deadlock)",
                           concurrent.ok);
  ok &= bench::shape_check(
      "shared-service aggregate >= 60% of isolated (acceptance bar)", retention >= 0.6);
  ok &= bench::shape_check("concurrent fairness ratio >= 0.5",
                           concurrent.fairness >= 0.5);
  return ok ? 0 : 1;
}
