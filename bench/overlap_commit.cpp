// Overlap bench — what the asynchronous commit pipeline buys on the LU
// driver: the sync run pays copy+encode+flush inside the elimination
// loop; the async run pays only the stage() copy there, with the
// encode/flush hidden on the background worker.
//
// The headline number is the critical-path commit ratio
//   async ckpt_total_s / sync ckpt_total_s
// which the issue's acceptance bar puts at <= 0.5 (in practice the stage
// copy is ~an order of magnitude cheaper). Results, including the
// overlap fraction worker/(stage+worker), are written as a RunReport
// JSON next to the table.
//
//   ./overlap_commit [--n 384] [--reps 3] [--smoke]
//                    [--report overlap_commit_report.json]
//
// --smoke shrinks the problem for the ctest wiring (fast, single rep).
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "telemetry/report.hpp"
#include "util/json_writer.hpp"
#include "util/options.hpp"

using namespace skt;

namespace {

struct ModeRun {
  bool ok = false;
  double commit_critical_s = 0.0;  ///< time the elimination loop paid
  double worker_s = 0.0;           ///< background pipeline time (async)
  double overlap_fraction = 0.0;
  int checkpoints = 0;
};

/// Median critical-path commit time over `reps` fault-free runs (the host
/// timeshares rank threads, so single-shot wall times are noisy).
ModeRun measure(const hpl::SktHplConfig& base, bool async, int reps) {
  std::vector<ModeRun> runs;
  for (int i = 0; i < reps; ++i) {
    hpl::SktHplConfig config = base;
    config.async = async;
    bench::ClusterSpec spec;
    spec.ranks = config.hpl.grid_p * config.hpl.grid_q;
    spec.spares = 0;
    const bench::HplRun r = bench::run_hpl_job(spec, config);
    ModeRun m;
    m.ok = r.ok;
    m.commit_critical_s = r.skt.ckpt_total_s;
    m.worker_s = r.skt.ckpt_worker_total_s;
    m.overlap_fraction = r.skt.overlap_fraction;
    m.checkpoints = r.skt.checkpoints;
    if (!m.ok) return m;
    runs.push_back(m);
  }
  std::sort(runs.begin(), runs.end(), [](const ModeRun& a, const ModeRun& b) {
    return a.commit_critical_s < b.commit_critical_s;
  });
  return runs[runs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const bool smoke = opts.get_bool("smoke", false);
  const int reps = static_cast<int>(opts.get_int("reps", smoke ? 1 : 3));
  const std::string report_path =
      opts.get("report", util::report_path("overlap_commit_report.json"));

  bench::print_header("Overlap", "async commit pipeline vs sync on the LU driver");

  hpl::SktHplConfig config;
  config.hpl.n = opts.get_int("n", smoke ? 192 : 384);
  config.hpl.nb = 32;
  config.hpl.grid_p = 2;
  config.hpl.grid_q = 2;
  config.group_size = 4;
  config.ckpt_every_panels = 1;  // checkpoint every panel: commit-dominated
  config.strategy = ckpt::Strategy::kSelf;

  const ModeRun sync_run = measure(config, /*async=*/false, reps);
  const ModeRun async_run = measure(config, /*async=*/true, reps);
  const double ratio = sync_run.commit_critical_s > 0
                           ? async_run.commit_critical_s / sync_run.commit_critical_s
                           : 1.0;

  util::Table table({"mode", "critical-path commit", "worker (overlapped)",
                     "overlap fraction", "checkpoints"});
  table.add_row({"sync", util::format_seconds(sync_run.commit_critical_s), "-", "-",
                 std::to_string(sync_run.checkpoints)});
  table.add_row({"async", util::format_seconds(async_run.commit_critical_s),
                 util::format_seconds(async_run.worker_s),
                 util::format("{:.1%}", async_run.overlap_fraction),
                 std::to_string(async_run.checkpoints)});
  table.print();
  std::printf("\ncritical-path commit ratio (async/sync): %.3f\n", ratio);

  telemetry::RunReport report("overlap_commit");
  report.set("n", config.hpl.n);
  report.set("nb", config.hpl.nb);
  report.set("reps", static_cast<std::int64_t>(reps));
  report.set("checkpoints", static_cast<std::int64_t>(async_run.checkpoints));
  report.set("sync_commit_critical_s", sync_run.commit_critical_s);
  report.set("async_commit_critical_s", async_run.commit_critical_s);
  report.set("async_worker_s", async_run.worker_s);
  report.set("commit_ratio_async_over_sync", ratio);
  report.set("overlap_fraction", async_run.overlap_fraction);
  report.write(report_path);
  std::printf("report written to %s\n", report_path.c_str());

  bool ok = true;
  ok &= bench::shape_check("sync run passes HPL verification", sync_run.ok);
  ok &= bench::shape_check("async run passes HPL verification", async_run.ok);
  ok &= bench::shape_check("both modes commit the same number of epochs",
                           sync_run.checkpoints == async_run.checkpoints &&
                               sync_run.checkpoints > 0);
  ok &= bench::shape_check(
      "async critical-path commit <= 50% of sync (acceptance bar)", ratio <= 0.5);
  ok &= bench::shape_check("worker hides most of the commit (overlap fraction > 50%)",
                           async_run.overlap_fraction > 0.5);
  return ok ? 0 : 1;
}
