// Sharded-vault bandwidth gate: the whole point of spreading the durable
// tier across N node-local shards is that one large L2 flush engages every
// shard's device concurrently instead of funnelling through a single
// mount point. The gated quantity is the MODELED aggregate flush
// bandwidth — bytes / ShardedVault::write_seconds(), the same number a
// multi-level session charges its virtual clock — because that is what
// the paper-level efficiency projections consume. Ideal scaling is Nx
// (extents stripe round-robin from the anchor, so an image much larger
// than one extent puts ceil(bytes/N) on every shard); the gate requires
// >= 2x at 4 shards vs 1, leaving honest headroom for anchor skew on
// small images. Wall-clock put/get throughput (real memcpy work through
// the striping, replication, and index paths) is reported for trending
// only — it measures this host's memory system, not the modeled devices.
// Results land in BENCH_vault.json; exit status enforces the gate.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "storage/device.hpp"
#include "storage/sharded_vault.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace skt;

constexpr std::size_t kImageBytes = 8u << 20;  ///< one rank's L2 image
constexpr int kImages = 8;                     ///< ranks flushing per epoch

double wall_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Sample {
  int shards = 0;
  double modeled_flush_Bps = 0.0;  ///< bytes / write_seconds (the gated number)
  double modeled_read_Bps = 0.0;
  double wall_put_Bps = 0.0;       ///< real memcpy throughput, trending only
  double wall_get_Bps = 0.0;
  std::uint64_t physical_bytes = 0;
  std::uint64_t logical_bytes = 0;
};

Sample run_at(int shards) {
  storage::ShardedVaultConfig config;
  for (int n = 0; n < shards; ++n) config.nodes.push_back(n);
  config.shard_profile = storage::ssd_profile();
  storage::ShardedVault vault(config);

  std::vector<std::byte> image(kImageBytes);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::byte>((i * 131) & 0xff);
  }

  Sample s;
  s.shards = shards;

  // Modeled time: what a multi-level flush would charge its virtual clock.
  double modeled_write_s = 0.0;
  double modeled_read_s = 0.0;
  const double put0 = wall_seconds();
  for (int r = 0; r < kImages; ++r) {
    const std::string key = "bench.r" + std::to_string(r) + ".L2.img";
    modeled_write_s += vault.write_seconds(key, image.size()).value();
    vault.put(key, image);
  }
  const double put_wall = wall_seconds() - put0;

  const double get0 = wall_seconds();
  for (int r = 0; r < kImages; ++r) {
    const std::string key = "bench.r" + std::to_string(r) + ".L2.img";
    modeled_read_s += vault.read_seconds(key, image.size()).value();
    const auto blob = vault.get(key);
    if (!blob.has_value() || blob->size() != image.size() ||
        std::memcmp(blob->data(), image.data(), image.size()) != 0) {
      std::fprintf(stderr, "vault_bandwidth: round-trip mismatch at %d shards\n", shards);
      std::exit(1);
    }
  }
  const double get_wall = wall_seconds() - get0;

  const double total = static_cast<double>(kImageBytes) * kImages;
  s.modeled_flush_Bps = total / modeled_write_s;
  s.modeled_read_Bps = total / modeled_read_s;
  s.wall_put_Bps = total / put_wall;
  s.wall_get_Bps = total / get_wall;
  s.logical_bytes = vault.bytes_in_use();
  for (int n = 0; n < shards; ++n) s.physical_bytes += vault.shard_bytes(n);
  return s;
}

}  // namespace

int main() {
  const int shard_counts[] = {1, 2, 4, 8};
  std::vector<Sample> samples;
  for (const int n : shard_counts) samples.push_back(run_at(n));

  double bw1 = 0.0;
  double bw4 = 0.0;
  util::JsonWriter report;
  report.begin_object();
  report.field("bench", "vault_bandwidth");
  report.field("image_bytes", static_cast<std::uint64_t>(kImageBytes));
  report.field("images", static_cast<std::int64_t>(kImages));
  report.key("samples");
  report.begin_array();
  for (const Sample& s : samples) {
    report.begin_object();
    report.field("shards", static_cast<std::int64_t>(s.shards));
    report.field("modeled_flush_Bps", s.modeled_flush_Bps);
    report.field("modeled_read_Bps", s.modeled_read_Bps);
    report.field("wall_put_Bps", s.wall_put_Bps);
    report.field("wall_get_Bps", s.wall_get_Bps);
    report.field("logical_bytes", s.logical_bytes);
    report.field("physical_bytes", s.physical_bytes);
    report.end_object();
    if (s.shards == 1) bw1 = s.modeled_flush_Bps;
    if (s.shards == 4) bw4 = s.modeled_flush_Bps;
  }
  report.end_array();
  const double speedup = bw1 > 0.0 ? bw4 / bw1 : 0.0;
  report.field("flush_speedup_4v1", speedup);
  report.field("gate_min_speedup", 2.0);
  const bool gate_ok = speedup >= 2.0;
  report.field("gate_ok", gate_ok);
  report.end_object();
  util::write_json_file(util::report_path("BENCH_vault.json"), report.str());

  std::printf("vault_bandwidth: modeled flush %.1f MB/s @1 shard, %.1f MB/s @4 shards "
              "(%.2fx, gate >= 2x): %s\n",
              bw1 / 1e6, bw4 / 1e6, speedup, gate_ok ? "PASS" : "FAIL");
  return gate_ok ? 0 : 1;
}
