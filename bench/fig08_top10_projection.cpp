// Figure 8 — modeled HPL efficiency of the top-10 TOP500 systems when only
// half (k = 1/2, what self-checkpoint leaves) or a third (k = 1/3, what
// double-checkpoint leaves) of memory is available, using the Eq. 8 lower
// bound against each machine's officially reported efficiency.
#include "bench_common.hpp"
#include "model/efficiency.hpp"
#include "model/top500.hpp"

using namespace skt;

int main() {
  bench::print_header("Figure 8",
                      "modeled efficiency of the TOP500 top-10 at k = 1, 1/2, 1/3");

  util::Table table({"system", "reported", "k = 1/2 (self)", "k = 1/3 (double)",
                     "gain of 1/2 over 1/3"});
  double total_gain = 0.0;
  bool monotone = true;
  for (const auto& sys : model::top10_nov2016()) {
    const double e1 = sys.efficiency();
    const double half = model::efficiency_lower_bound(e1, 0.5);
    const double third = model::efficiency_lower_bound(e1, 1.0 / 3.0);
    monotone &= e1 > half && half > third;
    const double gain = (half - third) / third;
    total_gain += gain;
    table.add_row({std::string(sys.name), util::format("{:.1%}", e1),
                   util::format("{:.1%}", half), util::format("{:.1%}", third),
                   util::format("{:.1%}", gain)});
  }
  table.print();
  const double avg_gain = total_gain / 10.0;
  std::printf("\naverage efficiency gain from 1/3 to 1/2 of memory: %.2f%%\n",
              avg_gain * 100.0);
  std::printf("(paper reports 11.96%% average improvement for the same projection)\n");

  bool ok = true;
  ok &= bench::shape_check("efficiency strictly decreases with memory fraction", monotone);
  ok &= bench::shape_check("average gain from 1/3 to 1/2 of memory is ~12% (8-16%)",
                           avg_gain > 0.08 && avg_gain < 0.16);
  return ok ? 0 : 1;
}
