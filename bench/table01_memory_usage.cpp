// Table 1 — memory usage of the self-checkpoint mechanism per part
// (A1+A2, B, C, D) and the closed-form totals of Eqs. 2-4, validated
// against the byte counts the protocols actually allocate.
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/plan.hpp"
#include "ckpt/session.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"

using namespace skt;

namespace {

/// Actually allocated protocol footprint for one strategy at group size N.
std::size_t measured_footprint(ckpt::Strategy strategy, int group, std::size_t m) {
  std::size_t bytes = 0;
  storage::SnapshotVault vault;
  bench::ClusterSpec spec;
  spec.ranks = group;
  spec.spares = 0;
  (void)bench::run_job(spec, [&](mpi::Comm& world) {
    ckpt::Session session = ckpt::SessionBuilder{}
                                .strategy(strategy)
                                .key_prefix("t1")
                                .data_bytes(m)
                                .vault(&vault)
                                .device(storage::ssd_profile())
                                .build(world);
    (void)session.open();
    if (world.rank() == 0) bytes = session.memory_bytes();
  });
  return bytes;
}

}  // namespace

int main() {
  bench::print_header("Table 1", "memory usage of the self-checkpoint mechanism");
  const std::size_t m = 1u << 20;  // M = 1 MiB per process

  {
    util::Table table({"item", "paper size", "bytes at M=1MiB, N=8"});
    const int n = 8;
    const ckpt::MemoryPlan plan = ckpt::plan_memory(ckpt::Strategy::kSelf, 0, 2);
    (void)plan;
    const double mn = static_cast<double>(m);
    table.add_row({"A1+A2 (work)", "M", util::format_bytes(m)});
    table.add_row({"B (checkpoint)", "M", util::format_bytes(m)});
    table.add_row({"C (old checksum)", "M/(N-1)",
                   util::format_bytes(static_cast<std::size_t>(mn / (n - 1)))});
    table.add_row({"D (new checksum)", "M/(N-1)",
                   util::format_bytes(static_cast<std::size_t>(mn / (n - 1)))});
    table.add_row({"total", "2MN/(N-1)",
                   util::format_bytes(static_cast<std::size_t>(2 * mn * n / (n - 1)))});
    table.print();
  }

  std::printf("\nmeasured allocation vs closed form (M = 1 MiB):\n");
  util::Table table({"strategy", "N", "formula total", "allocated", "deviation"});
  bool all_ok = true;
  for (const auto strategy :
       {ckpt::Strategy::kSingle, ckpt::Strategy::kDouble, ckpt::Strategy::kSelf}) {
    for (const int n : {2, 4, 8, 16}) {
      const double mn = static_cast<double>(m);
      double formula = 0;
      switch (strategy) {
        case ckpt::Strategy::kSingle: formula = mn * (2.0 + 1.0 / (n - 1)); break;
        case ckpt::Strategy::kDouble: formula = mn * (3.0 + 2.0 / (n - 1)); break;
        case ckpt::Strategy::kSelf: formula = 2.0 * mn * n / (n - 1); break;
        default: break;
      }
      const std::size_t allocated = measured_footprint(strategy, n, m);
      const double deviation =
          std::abs(static_cast<double>(allocated) - formula) / formula;
      all_ok &= deviation < 0.02;  // stripe padding + headers only
      table.add_row({std::string(ckpt::to_string(strategy)), std::to_string(n),
                     util::format_bytes(static_cast<std::size_t>(formula)),
                     util::format_bytes(allocated), util::format("{:.2%}", deviation)});
    }
  }
  table.print();
  bench::shape_check("allocated footprints match Table 1 formulas within 2%", all_ok);
  return all_ok ? 0 : 1;
}
