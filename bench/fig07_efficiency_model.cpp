// Figure 7 — HPL efficiency vs memory per rank, fitted with the model
// E(N) = N / (aN + b) (Eq. 5). The paper fits 192-rank measurements on a
// local cluster; here the same sweep runs on the simulated machine and the
// same inverse-linear fit is applied.
#include <vector>

#include "bench_common.hpp"
#include "model/efficiency.hpp"

using namespace skt;

int main() {
  bench::print_header("Figure 7", "HPL efficiency vs memory per rank + model fit");
  std::printf("calibrated GEMM peak: %.2f GFLOP/s\n", bench::peak_gflops());

  const bench::Geometry geom{2, 4, 32};
  std::vector<double> sizes;
  std::vector<double> efficiencies;
  std::vector<double> mem_per_rank_mib;

  util::Table table({"memory/rank", "problem size N", "GFLOP/s", "efficiency"});
  for (const std::size_t mib : {1, 2, 4, 8, 16, 24}) {
    const std::int64_t n = bench::fit_n(geom, mib << 20);
    bench::ClusterSpec spec;
    spec.ranks = geom.ranks();
    spec.profile = bench::bench_network_profile(60.0e6);
    spec.model_network = true;
    const auto config =
        bench::make_config(geom, n, ckpt::Strategy::kNone, 4, 0);
    const bench::HplRun run = bench::run_hpl_job(spec, config);
    if (!run.ok) {
      std::printf("run failed at %zu MiB\n", mib);
      return 1;
    }
    sizes.push_back(static_cast<double>(n));
    efficiencies.push_back(run.efficiency);
    mem_per_rank_mib.push_back(static_cast<double>(mib));
    table.add_row({util::format("{} MiB", static_cast<std::int64_t>(mib)),
                   std::to_string(n), util::format("{:.2f}", run.gflops),
                   util::format("{:.1%}", run.efficiency)});
  }
  table.print();

  const model::EfficiencyModel fit = model::fit_efficiency(sizes, efficiencies);
  std::printf("\nmodel fit: E(N) = N / (%.4f N + %.1f), r^2 = %.4f\n", fit.a, fit.b, fit.r2);
  util::Table fitted({"N", "measured", "model"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    fitted.add_row({std::to_string(static_cast<std::int64_t>(sizes[i])),
                    util::format("{:.1%}", efficiencies[i]),
                    util::format("{:.1%}", fit.efficiency(sizes[i]))});
  }
  fitted.print();

  bool ok = true;
  ok &= bench::shape_check(
      "efficiency rises substantially from the smallest to the largest problem",
      efficiencies.back() > efficiencies.front() + 0.05);
  ok &= bench::shape_check("inverse-linear fit explains the sweep (r^2 > 0.8)",
                           fit.r2 > 0.8);
  ok &= bench::shape_check("fitted a > 1 (efficiency asymptote below 100%)", fit.a > 1.0);
  return ok ? 0 : 1;
}
