// Figure 12 — normalized efficiency vs memory utilization for SKT-HPL on
// both systems, with the Eq. 5 model fitted through the sweep. The paper's
// observation: the impact of memory space is more significant on Tianhe-2
// (whose NIC is shared by twice as many ranks) than on Tianhe-1A, and the
// self-checkpoint fraction (44-47%) costs ~5% against full memory while
// double-checkpoint's ~30% costs more — the Section 6.5 benefit.
#include <vector>

#include "bench_common.hpp"
#include "model/efficiency.hpp"
#include "model/systems.hpp"

using namespace skt;

namespace {

struct Sweep {
  std::string name;
  std::vector<double> fractions;
  std::vector<double> sizes;
  std::vector<double> normalized;  // efficiency / full-memory efficiency
  model::EfficiencyModel fit;
};

Sweep run_sweep(const model::SystemProfile& system, std::size_t capacity) {
  Sweep sweep;
  sweep.name = std::string(system.name);
  const bench::Geometry geom{2, 4, 32};
  // NIC sharing (ranks per port) carries the Table 2 difference; one rank
  // per simulated node keeps the group planner satisfiable.
  bench::ClusterSpec spec;
  spec.ranks = geom.ranks();
  spec.profile = system.node;
  spec.model_network = true;

  double full_eff = 0.0;
  std::vector<double> effs;
  for (const double k : {0.10, 0.20, 0.30, 0.44, 0.70, 1.00}) {
    const std::int64_t n =
        bench::fit_n(geom, static_cast<std::size_t>(static_cast<double>(capacity) * k));
    const auto config = bench::make_config(geom, n, ckpt::Strategy::kNone, 8, 0);
    const bench::HplRun run = bench::run_hpl_job_median(spec, config, 2);
    sweep.fractions.push_back(k);
    sweep.sizes.push_back(static_cast<double>(n));
    effs.push_back(run.efficiency);
    if (k == 1.00) full_eff = run.efficiency;
  }
  for (double e : effs) sweep.normalized.push_back(e / full_eff);
  sweep.fit = model::fit_efficiency(sweep.sizes, effs);
  return sweep;
}

double normalized_at(const Sweep& sweep, double k) {
  for (std::size_t i = 0; i < sweep.fractions.size(); ++i) {
    if (sweep.fractions[i] == k) return sweep.normalized[i];
  }
  return 0.0;
}

}  // namespace

int main() {
  bench::print_header("Figure 12", "normalized efficiency vs memory utilization + model");

  const Sweep t1 = run_sweep(bench::bench_system(model::tianhe1a()), 16u << 20);
  const Sweep t2 = run_sweep(bench::bench_system(model::tianhe2()), 16u << 20);

  util::Table table({"memory utilization", "N (T1A)", "Tianhe-1A", "model",
                     "N (T2)", "Tianhe-2", "model"});
  for (std::size_t i = 0; i < t1.fractions.size(); ++i) {
    const double full1 = t1.fit.efficiency(t1.sizes.back());
    const double full2 = t2.fit.efficiency(t2.sizes.back());
    table.add_row({util::format("{:.0%}", t1.fractions[i]),
                   std::to_string(static_cast<std::int64_t>(t1.sizes[i])),
                   util::format("{:.1%}", t1.normalized[i]),
                   util::format("{:.1%}", t1.fit.efficiency(t1.sizes[i]) / full1),
                   std::to_string(static_cast<std::int64_t>(t2.sizes[i])),
                   util::format("{:.1%}", t2.normalized[i]),
                   util::format("{:.1%}", t2.fit.efficiency(t2.sizes[i]) / full2)});
  }
  table.print();
  std::printf("\nfit (Tianhe-1A): E(N) = N / (%.4f N + %.1f), r^2 = %.4f\n", t1.fit.a,
              t1.fit.b, t1.fit.r2);
  std::printf("fit (Tianhe-2):  E(N) = N / (%.4f N + %.1f), r^2 = %.4f\n", t2.fit.a,
              t2.fit.b, t2.fit.r2);

  // The self-vs-double benefit of Section 6.5: efficiency at the
  // self-checkpoint fraction (~44%) vs the double-checkpoint one (~30%).
  const double self_vs_double_t2 = normalized_at(t2, 0.44) - normalized_at(t2, 0.30);
  std::printf("\nTianhe-2: self-checkpoint memory (44%%) outperforms double-checkpoint "
              "memory (30%%) by %.1f%% (paper: ~5%%)\n",
              self_vs_double_t2 * 100.0);

  bool ok = true;
  const auto rises = [](const std::vector<double>& v) {
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i] < v[i - 1] - 0.025) return false;  // 2.5% wall-clock noise band
    }
    return v.back() > v.front() + 0.10;
  };
  ok &= bench::shape_check("normalized efficiency rises with memory on both systems",
                           rises(t1.normalized) && rises(t2.normalized));
  ok &= bench::shape_check("the Eq. 5 model fits both sweeps (r^2 > 0.85)",
                           t1.fit.r2 > 0.85 && t2.fit.r2 > 0.85);
  ok &= bench::shape_check("self-checkpoint memory beats double-checkpoint memory on T2",
                           self_vs_double_t2 > 0.0);
  ok &= bench::shape_check(
      "memory reduction hurts Tianhe-2 more than Tianhe-1A (shared NIC)",
      normalized_at(t2, 0.10) <= normalized_at(t1, 0.10) + 0.03);
  return ok ? 0 : 1;
}
