// Figure 10 — time for each phase of a work-fail-detect-restart cycle.
//
// The paper measures, at 24,576 ranks on Tianhe-2: detect 63 s, replace
// 10 s, restart 9 s, recover 20 s, checkpoint 16 s. Detection/replacement/
// restart latencies belong to the job-management system and are charged as
// configured virtual time (the Tianhe-2 values); recover and checkpoint
// are genuinely measured on the simulated machine.
#include "bench_common.hpp"

using namespace skt;

int main() {
  bench::print_header("Figure 10", "work-fail-detect-restart cycle phases");

  const bench::Geometry geom{2, 4, 32};
  const std::int64_t n = bench::fit_n(geom, 4u << 20);
  const std::int64_t ckpt_every = 4;

  sim::FailureInjector injector;
  injector.add_rule({.point = "hpl.panel", .world_rank = 2, .hit = 6, .repeat = false});

  auto config = bench::make_config(geom, n, ckpt::Strategy::kSelf, 8, ckpt_every);
  bench::ClusterSpec spec;
  spec.ranks = geom.ranks();
  mpi::LauncherConfig launcher;
  launcher.max_restarts = 2;
  launcher.detect_delay_s = 63.0;   // Tianhe-2 job manager detection latency
  launcher.replace_delay_s = 10.0;  // ranklist health check + spare substitution
  launcher.restart_delay_s = 9.0;   // mpirun relaunch

  const bench::HplRun run = bench::run_hpl_job(spec, config, &injector, launcher);
  if (!run.ok) {
    std::printf("run failed\n");
    return 1;
  }

  // Reconstruct the cycle from the launcher's phase records (the HplRun
  // keeps only totals, so rerun via run_job for the detailed cycle).
  sim::FailureInjector injector2;
  injector2.add_rule({.point = "hpl.panel", .world_rank = 2, .hit = 6, .repeat = false});
  hpl::SktHplResult after{};
  const mpi::LaunchResult result = bench::run_job(
      spec,
      [&](mpi::Comm& world) {
        const hpl::SktHplResult r = hpl::run_skt_hpl(world, config);
        if (world.rank() == 0) after = r;
      },
      &injector2, launcher);
  if (!result.success || result.cycles.empty()) {
    std::printf("cycle run failed\n");
    return 1;
  }
  const mpi::CycleTiming& cycle = result.cycles.front();

  util::Table table({"phase", "this repro", "paper (Tianhe-2, 24,576 ranks)"});
  table.add_row({"detect the failure and kill the job",
                 util::format_seconds(cycle.detect_s), "63 s"});
  table.add_row({"replace lost nodes by spare nodes",
                 util::format_seconds(cycle.replace_s), "10 s"});
  table.add_row({"restart SKT-HPL", util::format_seconds(cycle.restart_s), "9 s"});
  table.add_row({"recover data (measured)", util::format_seconds(after.restore_s), "20 s"});
  table.add_row({"checkpoint (measured)",
                 util::format_seconds(after.checkpoints > 0
                                          ? after.ckpt_total_s / after.checkpoints
                                          : 0.0),
                 "16 s"});
  table.print();

  bool ok = true;
  ok &= bench::shape_check("the failed run resumed from a checkpoint", after.restored);
  ok &= bench::shape_check("exactly one restart cycle", result.restarts == 1);
  ok &= bench::shape_check(
      "recovery costs more than one checkpoint (extra decode work, as in the paper)",
      after.restore_s >
          0.5 * (after.checkpoints > 0 ? after.ckpt_total_s / after.checkpoints : 0.0));
  ok &= bench::shape_check("detection dominates the cycle (job-manager latency)",
                           cycle.detect_s > cycle.replace_s && cycle.detect_s > cycle.restart_s);
  return ok ? 0 : 1;
}
